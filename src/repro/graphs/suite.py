"""Synthetic analogues of the paper's test-matrix suite (Table 3).

The paper evaluates on 22 matrices: 19 from the SuiteSparse Matrix Collection
plus the ANISO1/2/3 model problems whose stencils it prints.  The collection
matrices are not redistributable here, so each gets a *synthetic analogue*
that reproduces the structural property driving its behaviour in the paper's
experiments:

* symmetry, approximate mean degree and (scaled-down) size;
* the weight structure that matters — exact ties (ECOLOGY, ATMOSMODD),
  a dominant non-axis direction hidden from the natural ordering
  (ATMOSMODM, ANISO2), an almost-perfect strong matching (STOCF-1465),
  wide nearly-isotropic FEM stencils (AF_SHELL8, HOOK, GEO, CUBE_COUP,
  ML_GEER), or a strong 1-D fibre inside a wide stencil (BUMP, LONG_COUP).

Every entry also records the numbers the paper reports for it in Tables 3-5
(:attr:`SuiteMatrix.paper`), so the benchmark harnesses can print
paper-vs-measured rows directly.

Sizes: ``build(scale)`` multiplies the default linear grid dimension; the
defaults target N ≈ 2-5·10³ per matrix (laptop scale; the paper runs
N ≈ 0.5-6·10⁶ on a GPU).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .._validation import INDEX_DTYPE, VALUE_DTYPE
from ..errors import ShapeError
from ..sparse.coo import COOMatrix
from ..sparse.csr import CSRMatrix
from .stencils import aniso1, aniso2, aniso3, grid2d_stencil, grid3d_stencil

__all__ = [
    "SUITE",
    "SuiteMatrix",
    "build_matrix",
    "slow_frontier",
    "small_suite",
    "suite_names",
    "tuning_workloads",
]


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------


def _with_dominant_diagonal(off: CSRMatrix, *, margin: float = 0.02) -> CSRMatrix:
    """Attach diag = (1+margin) · Σ|row| to an off-diagonal matrix."""
    n = off.n_rows
    row_abs = np.zeros(n, dtype=VALUE_DTYPE)
    np.add.at(row_abs, off.nnz_rows, np.abs(off.data))
    # isolated vertices (possible in the random-graph analogues) still need a
    # nonzero pivot
    row_abs[row_abs == 0.0] = 1.0
    coo = off.to_coo()
    idx = np.arange(n, dtype=INDEX_DTYPE)
    return COOMatrix(
        row=np.concatenate([coo.row, idx]),
        col=np.concatenate([coo.col, idx]),
        val=np.concatenate([coo.val, (1.0 + margin) * row_abs]),
        shape=(n, n),
    ).to_csr()


def _jitter_symmetric(a: CSRMatrix, amount: float, seed: int) -> CSRMatrix:
    """Multiplicative symmetric jitter on the off-diagonal values."""
    if amount <= 0.0:
        return a
    coo = a.to_coo()
    lo = np.minimum(coo.row, coo.col).astype(np.uint64)
    hi = np.maximum(coo.row, coo.col).astype(np.uint64)
    h = lo * np.uint64(0x9E3779B97F4A7C15) ^ hi * np.uint64(0xC2B2AE3D27D4EB4F)
    h ^= np.uint64(seed)
    h *= np.uint64(0xD6E8FEB86659FD93)
    h ^= h >> np.uint64(32)
    u = (h & np.uint64(0xFFFFFFFF)).astype(np.float64) / float(2**32)
    factor = 1.0 + amount * (2.0 * u - 1.0)
    factor[coo.row == coo.col] = 1.0
    return COOMatrix(coo.row, coo.col, coo.val * factor, a.shape).to_csr()


def _asymmetrize(a: CSRMatrix, epsilon: float) -> CSRMatrix:
    """Make the values pattern-symmetrically non-symmetric:
    the (i, j) entry with i < j is scaled by (1+ε), its mirror by (1−ε)."""
    coo = a.to_coo()
    upper = coo.col > coo.row
    lower = coo.col < coo.row
    val = coo.val.copy()
    val[upper] *= 1.0 + epsilon
    val[lower] *= 1.0 - epsilon
    return COOMatrix(coo.row, coo.col, val, a.shape).to_csr()


def _box_stencil_3d(
    rz: int, ry: int, rx: int, weight_fn: Callable[[int, int, int], float]
) -> dict[tuple[int, int, int], float]:
    stencil: dict[tuple[int, int, int], float] = {}
    for dz in range(-rz, rz + 1):
        for dy in range(-ry, ry + 1):
            for dx in range(-rx, rx + 1):
                if (dz, dy, dx) == (0, 0, 0):
                    continue
                stencil[(dz, dy, dx)] = weight_fn(dz, dy, dx)
    return stencil


def _grid_dims(scale: float, base: int) -> int:
    g = max(3, int(round(base * scale)))
    return g


# --------------------------------------------------------------------------
# builders (one per matrix)
# --------------------------------------------------------------------------


def _build_af_shell8(scale: float) -> CSRMatrix:
    """Wide 5×7 2-D shell stencil: strong vertical fibres, near-zero x
    coupling (c_id ≈ 0.01) and a broad mid-weight background that caps the
    [0,n] coverages at the paper's low values (c_π(2) ≈ 0.23)."""
    g = _grid_dims(scale, 56)
    stencil: dict[tuple[int, int], float] = {}
    for dy in range(-2, 3):
        for dx in range(-3, 4):
            if (dy, dx) == (0, 0):
                continue
            if dx == 0 and abs(dy) == 1:
                w = 1.0
            elif dy == 0 and abs(dx) == 1:
                w = 0.05
            else:
                w = 0.65 * math.exp(-0.18 * (dx * dx + dy * dy))
            stencil[(dy, dx)] = -w
    off = grid2d_stencil(g, stencil, jitter=0.08, seed=11)
    return _with_dominant_diagonal(off)


def _build_aniso(which: int) -> Callable[[float], CSRMatrix]:
    def build(scale: float) -> CSRMatrix:
        g = _grid_dims(scale, 64)
        return {1: aniso1, 2: aniso2, 3: aniso3}[which](g)

    return build


def _build_atmosmod(wx: float, wy: float, wz: float, epsilon: float, seed: int):
    def build(scale: float) -> CSRMatrix:
        g = _grid_dims(scale, 16)
        stencil = {
            (0, 0, 1): -wx, (0, 0, -1): -wx,
            (0, 1, 0): -wy, (0, -1, 0): -wy,
            (1, 0, 0): -wz, (-1, 0, 0): -wz,
        }
        off = grid3d_stencil(g, stencil)
        if epsilon:
            off = _asymmetrize(off, epsilon)
        return _with_dominant_diagonal(off)

    return build


def _build_wide3d(
    *, rz: int, ry: int, rx: int, fibre: float, jitter: float, seed: int,
    epsilon: float = 0.0, base: int = 12,
) -> Callable[[float], CSRMatrix]:
    """Wide 3-D FEM-like stencil; ``fibre`` boosts the ±z axis neighbours."""

    def weight(dz: int, dy: int, dx: int) -> float:
        w = -math.exp(-0.5 * (dz * dz + dy * dy + dx * dx))
        if fibre != 1.0 and (dy, dx) == (0, 0) and abs(dz) == 1:
            w *= fibre
        return w

    def build(scale: float) -> CSRMatrix:
        g = _grid_dims(scale, base)
        off = grid3d_stencil(g, _box_stencil_3d(rz, ry, rx, weight))
        off = _jitter_symmetric(off, jitter, seed)
        if epsilon:
            off = _asymmetrize(off, epsilon)
        return _with_dominant_diagonal(off)

    return build


def _build_curlcurl(seed: int) -> Callable[[float], CSRMatrix]:
    """3-D 7-point plus in-plane diagonals (≈11 neighbours), mild jitter."""

    def build(scale: float) -> CSRMatrix:
        g = _grid_dims(scale, 15)
        stencil = {
            (0, 0, 1): -1.0, (0, 0, -1): -1.0,
            (0, 1, 0): -1.0, (0, -1, 0): -1.0,
            (1, 0, 0): -1.0, (-1, 0, 0): -1.0,
            (0, 1, 1): -0.6, (0, -1, -1): -0.6,
            (0, 1, -1): -0.6, (0, -1, 1): -0.6,
        }
        off = _jitter_symmetric(grid3d_stencil(g, stencil), 0.25, seed)
        return _with_dominant_diagonal(off)

    return build


def _build_ecology(variant: int) -> Callable[[float], CSRMatrix]:
    """2-D 5-point with *exactly uniform* weights — the pathological tie
    case that defeats un-charged proposition (Table 4: c_π(5) = 0.00).

    ecology1 and ecology2 differ by a single vertex in the paper (N vs N−1);
    the analogues mirror that with grid sizes differing by one row.
    """

    def build(scale: float) -> CSRMatrix:
        g = _grid_dims(scale, 64) + (variant - 1)
        stencil = {(0, 1): -1.0, (0, -1): -1.0, (1, 0): -1.0, (-1, 0): -1.0}
        return _with_dominant_diagonal(grid2d_stencil(g, stencil))

    return build


def _build_g3_circuit(scale: float) -> CSRMatrix:
    """Irregular circuit-like graph: a banded backbone (circuit rows number
    neighbours consecutively, giving the paper's c_id ≈ 0.29) plus random
    chords, mean degree ≈ 4.8, heavy-tailed weights."""
    n = max(64, int(round(4096 * scale * scale)))
    rng = np.random.default_rng(1585478)
    ids = np.arange(n - 1)
    backbone = ids[rng.random(n - 1) < 0.8]
    n_chords = int(1.5 * n)
    cu = rng.integers(0, n, n_chords)
    cv = rng.integers(0, n, n_chords)
    keep = cu != cv
    u = np.concatenate([backbone, cu[keep]])
    v = np.concatenate([backbone + 1, cv[keep]])
    w = -np.exp(rng.normal(0.0, 1.2, u.size))
    coo = COOMatrix(
        row=np.concatenate([u, v]),
        col=np.concatenate([v, u]),
        val=np.concatenate([w, w]),
        shape=(n, n),
    )
    return _with_dominant_diagonal(coo.to_csr())


def _build_thermal2(scale: float) -> CSRMatrix:
    """Unstructured-FEM-like: 5-point + one diagonal, weak x, strong jitter."""
    g = _grid_dims(scale, 64)
    stencil = {
        (0, 1): -0.35, (0, -1): -0.35,
        (1, 0): -1.0, (-1, 0): -1.0,
        (1, 1): -1.0, (-1, -1): -1.0,
    }
    off = _jitter_symmetric(grid2d_stencil(g, stencil), 0.4, seed=7)
    return _with_dominant_diagonal(off)


def _build_stocf(scale: float) -> CSRMatrix:
    """Two nested perfect matchings (one dominant) over a faint background.

    STOCF-1465's signature in Table 5 is c_π(1) = 0.92 rising to 1.00 for
    n ≥ 2: almost all weight sits in a perfect matching, and the remainder in
    a second disjoint matching — together a spanning union of paths/cycles
    that a [0,2]-factor captures entirely.
    """
    g = _grid_dims(scale, 16)
    n = g * g * g
    if n % 2:
        n -= 1
    rng = np.random.default_rng(1465137)
    # faint 3-D background (7-point plus in-plane diagonals) for realistic
    # degree
    stencil = {
        (0, 0, 1): -0.002, (0, 0, -1): -0.002,
        (0, 1, 0): -0.002, (0, -1, 0): -0.002,
        (1, 0, 0): -0.002, (-1, 0, 0): -0.002,
        (0, 1, 1): -0.0015, (0, -1, -1): -0.0015,
        (0, 1, -1): -0.0015, (0, -1, 1): -0.0015,
        (1, 0, 1): -0.0015, (-1, 0, -1): -0.0015,
    }
    background = grid3d_stencil(g, stencil).to_coo()
    keep = (background.row < n) & (background.col < n)
    rows = [background.row[keep]]
    cols = [background.col[keep]]
    vals = [background.val[keep]]
    # dominant matching M1 (random pairing)
    perm = rng.permutation(n)
    u1, v1 = perm[0::2], perm[1::2]
    # secondary matching M2: pair consecutive ids (disjoint from M1 w.h.p.;
    # coincidences just merge weights, harmless)
    ids = np.arange(n)
    u2, v2 = ids[0::2], ids[1::2]
    for (u, v, w) in ((u1, v1, -10.0), (u2, v2, -0.45)):
        rows.extend([u, v])
        cols.extend([v, u])
        weights = np.full(u.size, w, dtype=VALUE_DTYPE)
        vals.extend([weights, weights])
    off = COOMatrix(
        row=np.concatenate(rows), col=np.concatenate(cols),
        val=np.concatenate(vals), shape=(n, n),
    ).to_csr()
    return _with_dominant_diagonal(off)


def _build_transport(scale: float) -> CSRMatrix:
    """Non-symmetric 3-D transport: strong x coupling plus dx = ±2 terms."""
    g = _grid_dims(scale, 15)
    stencil = {
        (0, 0, 1): -2.0, (0, 0, -1): -2.0,
        (0, 0, 2): -0.5, (0, 0, -2): -0.5,
        (0, 1, 0): -1.25, (0, -1, 0): -1.25,
        (1, 0, 0): -1.25, (-1, 0, 0): -1.25,
    }
    off = _jitter_symmetric(grid3d_stencil(g, stencil), 0.15, seed=23)
    off = _asymmetrize(off, 0.1)
    return _with_dominant_diagonal(off)


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SuiteMatrix:
    """One test matrix: builder plus the paper's reported numbers.

    ``paper`` keys:

    * ``n``, ``nnz``, ``mean_degree``, ``symmetric`` — Table 3;
    * ``c_id`` — Table 5 (Eq. 5 coverage of the natural ordering);
    * ``par``/``seq`` — Table 5 c_π(5) for n = 1..4, parallel vs greedy;
    * ``table4`` — per configuration ``(c_π(5), c_π(M_max), M_max)`` for the
      [0,2]-factor, configurations (m, k_m) ∈ {(1,0), (5,0), (5,1)};
    * ``greedy2`` — Table 4's sequential [0,2]-factor coverage;
    * ``block`` — Table 5's AlgTriBlockPrecond coverage for m = 1 and m = 5.
    """

    name: str
    builder: Callable[[float], CSRMatrix]
    symmetric: bool
    paper: dict = field(default_factory=dict)
    in_figure4: bool = False

    def build(self, scale: float = 1.0) -> CSRMatrix:
        return self.builder(scale)


def _paper(
    n, nnz, deg, c_id, par, seq, table4, greedy2, block,
) -> dict:
    return {
        "n": n,
        "nnz": nnz,
        "mean_degree": deg,
        "c_id": c_id,
        "par": dict(zip((1, 2, 3, 4), par)),
        "seq": dict(zip((1, 2, 3, 4), seq)),
        "table4": {
            (1, 0): table4[0],
            (5, 0): table4[1],
            (5, 1): table4[2],
        },
        "greedy2": greedy2,
        "block": {1: block[0], 5: block[1]},
    }


SUITE: dict[str, SuiteMatrix] = {
    m.name: m
    for m in [
        SuiteMatrix(
            "af_shell8", _build_af_shell8, True, in_figure4=True,
            paper=_paper(504_855, 17_588_875, 34.84, 0.01,
                         (0.14, 0.23, 0.34, 0.40), (0.14, 0.23, 0.34, 0.40),
                         ((0.20, 0.24, 195), (0.23, 0.23, 16), (0.22, 0.22, 17)),
                         0.23, (0.38, 0.43)),
        ),
        SuiteMatrix(
            "aniso1", _build_aniso(1), True,
            paper=_paper(6_250_000, 56_220_004, 9.00, 0.68,
                         (0.27, 0.67, 0.72, 0.79), (0.29, 0.67, 0.73, 0.79),
                         ((0.67, 0.67, 1252), (0.67, 0.67, 11), (0.54, 0.54, 17)),
                         0.67, (0.68, 0.64)),
        ),
        SuiteMatrix(
            "aniso2", _build_aniso(2), True, in_figure4=True,
            paper=_paper(6_250_000, 56_220_004, 9.00, 0.13,
                         (0.27, 0.67, 0.72, 0.79), (0.29, 0.67, 0.73, 0.79),
                         ((0.67, 0.67, 1251), (0.67, 0.67, 11), (0.57, 0.57, 12)),
                         0.67, (0.68, 0.64)),
        ),
        SuiteMatrix(
            "aniso3", _build_aniso(3), True, in_figure4=True,
            paper=_paper(6_250_000, 56_220_004, 9.00, 0.68,
                         (0.27, 0.67, 0.72, 0.79), (0.29, 0.67, 0.73, 0.79),
                         ((0.67, 0.67, 55), (0.67, 0.67, 11), (0.56, 0.56, 17)),
                         0.67, (0.68, 0.64)),
        ),
        SuiteMatrix(
            "atmosmodd", _build_atmosmod(1.0, 1.0, 0.35, 0.08, 1), False,
            paper=_paper(1_270_432, 8_814_880, 6.94, 0.46,
                         (0.19, 0.41, 0.65, 0.93), (0.21, 0.44, 0.67, 0.93),
                         ((0.02, 0.47, 164), (0.41, 0.42, 16), (0.42, 0.42, 17)),
                         0.44, (0.02, 0.50)),
        ),
        SuiteMatrix(
            "atmosmodj", _build_atmosmod(1.0, 1.0, 0.35, 0.12, 2), False, in_figure4=True,
            paper=_paper(1_270_432, 8_814_880, 6.94, 0.46,
                         (0.19, 0.41, 0.65, 0.93), (0.21, 0.44, 0.67, 0.93),
                         ((0.02, 0.47, 164), (0.41, 0.42, 16), (0.42, 0.42, 17)),
                         0.44, (0.02, 0.50)),
        ),
        SuiteMatrix(
            "atmosmodl", _build_atmosmod(1.0, 1.0, 2.0, 0.08, 3), False, in_figure4=True,
            paper=_paper(1_489_752, 10_319_760, 6.93, 0.25,
                         (0.21, 0.49, 0.60, 0.73), (0.22, 0.49, 0.61, 0.73),
                         ((0.48, 0.49, 297), (0.49, 0.49, 16), (0.43, 0.43, 12)),
                         0.49, (0.41, 0.45)),
        ),
        SuiteMatrix(
            "atmosmodm", _build_atmosmod(0.5, 0.75, 20.0, 0.08, 4), False, in_figure4=True,
            paper=_paper(1_489_752, 10_319_760, 6.93, 0.03,
                         (0.38, 0.95, 0.96, 0.97), (0.42, 0.95, 0.96, 0.97),
                         ((0.95, 0.95, 297), (0.95, 0.95, 16), (0.74, 0.74, 12)),
                         0.95, (0.94, 0.86)),
        ),
        SuiteMatrix(
            "bump_2911",
            _build_wide3d(rz=1, ry=1, rx=2, fibre=25.0, jitter=0.1, seed=29, base=12),
            True,
            paper=_paper(2_911_419, 127_729_899, 43.87, 0.01,
                         (0.46, 0.81, 0.84, 0.86), (0.49, 0.82, 0.84, 0.86),
                         ((0.81, 0.82, 31), (0.81, 0.82, 26), (0.64, 0.64, 27)),
                         0.82, (0.84, 0.83)),
        ),
        SuiteMatrix(
            "cube_coup_dt0",
            _build_wide3d(rz=1, ry=1, rx=3, fibre=1.0, jitter=0.1, seed=31, base=11),
            True,
            paper=_paper(2_164_760, 127_206_144, 58.76, 0.06,
                         (0.11, 0.26, 0.33, 0.38), (0.13, 0.26, 0.34, 0.38),
                         ((0.26, 0.26, 102), (0.26, 0.26, 21), (0.22, 0.22, 22)),
                         0.26, (0.29, 0.29)),
        ),
        SuiteMatrix(
            "curlcurl_3", _build_curlcurl(3), True,
            paper=_paper(1_219_574, 13_544_618, 11.11, 0.15,
                         (0.17, 0.34, 0.54, 0.76), (0.17, 0.34, 0.55, 0.76),
                         ((0.34, 0.34, 47), (0.34, 0.34, 16), (0.36, 0.36, 12)),
                         0.34, (0.44, 0.54)),
        ),
        SuiteMatrix(
            "curlcurl_4", _build_curlcurl(4), True,
            paper=_paper(2_380_515, 26_515_867, 11.14, 0.15,
                         (0.17, 0.33, 0.53, 0.74), (0.17, 0.34, 0.54, 0.74),
                         ((0.33, 0.34, 47), (0.33, 0.33, 16), (0.35, 0.35, 12)),
                         0.34, (0.40, 0.53)),
        ),
        SuiteMatrix(
            "ecology1", _build_ecology(1), True,
            paper=_paper(1_000_000, 4_996_000, 5.00, 0.50,
                         (0.21, 0.46, 0.71, 1.00), (0.23, 0.47, 0.71, 1.00),
                         ((0.00, 0.50, 1037), (0.46, 0.47, 16), (0.46, 0.47, 17)),
                         0.47, (0.00, 0.55)),
        ),
        SuiteMatrix(
            "ecology2", _build_ecology(2), True,
            paper=_paper(999_999, 4_995_991, 5.00, 0.50,
                         (0.21, 0.46, 0.71, 1.00), (0.23, 0.47, 0.71, 1.00),
                         ((0.00, 0.50, 1038), (0.46, 0.47, 16), (0.46, 0.47, 17)),
                         0.47, (0.00, 0.55)),
        ),
        SuiteMatrix(
            "g3_circuit", _build_g3_circuit, True,
            paper=_paper(1_585_478, 7_660_826, 4.83, 0.29,
                         (0.50, 0.70, 0.83, 1.00), (0.51, 0.70, 0.84, 1.00),
                         ((0.56, 0.71, 159), (0.70, 0.70, 16), (0.59, 0.59, 17)),
                         0.70, (0.61, 0.73)),
        ),
        SuiteMatrix(
            "geo_1438",
            _build_wide3d(rz=1, ry=1, rx=2, fibre=1.0, jitter=0.1, seed=37, base=12),
            True,
            paper=_paper(1_437_960, 63_156_690, 43.92, 0.04,
                         (0.13, 0.28, 0.36, 0.44), (0.14, 0.28, 0.37, 0.44),
                         ((0.28, 0.28, 18), (0.28, 0.28, 16), (0.25, 0.25, 17)),
                         0.28, (0.33, 0.33)),
        ),
        SuiteMatrix(
            "hook_1498",
            _build_wide3d(rz=1, ry=1, rx=2, fibre=1.0, jitter=0.2, seed=41, base=12),
            True,
            paper=_paper(1_498_023, 60_917_445, 40.67, 0.04,
                         (0.11, 0.22, 0.28, 0.33), (0.11, 0.22, 0.28, 0.33),
                         ((0.22, 0.22, 11), (0.22, 0.22, 16), (0.20, 0.20, 17)),
                         0.22, (0.25, 0.25)),
        ),
        SuiteMatrix(
            "long_coup_dt0",
            _build_wide3d(rz=1, ry=1, rx=3, fibre=14.0, jitter=0.1, seed=43, base=11),
            True,
            paper=_paper(1_470_152, 87_088_992, 59.24, 0.10,
                         (0.49, 0.69, 0.79, 0.87), (0.50, 0.70, 0.79, 0.87),
                         ((0.70, 0.70, 110), (0.69, 0.69, 31), (0.55, 0.55, 27)),
                         0.70, (0.84, 0.83)),
        ),
        SuiteMatrix(
            "ml_geer",
            _build_wide3d(rz=2, ry=2, rx=1, fibre=1.0, jitter=0.1, seed=47,
                          epsilon=0.1, base=11),
            False,
            paper=_paper(1_504_002, 110_879_972, 73.72, 0.05,
                         (0.09, 0.20, 0.25, 0.32), (0.09, 0.20, 0.26, 0.32),
                         ((0.20, 0.20, 383), (0.20, 0.20, 11), (0.17, 0.17, 17)),
                         0.20, (0.23, 0.26)),
        ),
        SuiteMatrix(
            "stocf_1465", _build_stocf, True,
            paper=_paper(1_465_137, 21_005_389, 14.34, 0.23,
                         (0.92, 1.00, 1.00, 1.00), (0.93, 1.00, 1.00, 1.00),
                         ((1.00, 1.00, 11), (1.00, 1.00, 16), (0.78, 0.78, 17)),
                         1.00, (1.00, 1.00)),
        ),
        SuiteMatrix(
            "thermal2", _build_thermal2, True,
            paper=_paper(1_228_045, 8_580_313, 6.99, 0.10,
                         (0.23, 0.47, 0.68, 0.84), (0.24, 0.47, 0.68, 0.84),
                         ((0.47, 0.47, 7), (0.47, 0.47, 16), (0.44, 0.44, 12)),
                         0.47, (0.58, 0.58)),
        ),
        SuiteMatrix(
            "transport", _build_transport, False,
            paper=_paper(1_602_111, 23_500_731, 14.67, 0.49,
                         (0.20, 0.45, 0.68, 0.98), (0.22, 0.47, 0.70, 0.98),
                         ((0.24, 0.49, 290), (0.45, 0.45, 16), (0.44, 0.44, 17)),
                         0.47, (0.25, 0.53)),
        ),
    ]
}


def suite_names() -> list[str]:
    """All matrix names, in the paper's (alphabetical) Table 3 order."""
    return list(SUITE)


def small_suite() -> list[str]:
    """A representative subset used as the default benchmark workload.

    Covers every behavioural regime: exact ANISO problems, a tie-pathological
    matrix (ecology1), the hidden-strong-direction family (atmosmod*), a wide
    FEM stencil (af_shell8), an irregular graph (g3_circuit), the
    matching-dominated stocf_1465 and the unstructured thermal2.
    """
    return [
        "aniso1",
        "aniso2",
        "aniso3",
        "ecology1",
        "atmosmodd",
        "atmosmodl",
        "atmosmodm",
        "af_shell8",
        "g3_circuit",
        "thermal2",
        "stocf_1465",
    ]


def build_matrix(name: str, scale: float = 1.0) -> CSRMatrix:
    """Build one suite matrix by name."""
    try:
        entry = SUITE[name]
    except KeyError:
        raise ShapeError(f"unknown suite matrix {name!r}; known: {sorted(SUITE)}") from None
    return entry.build(scale)


def tuning_workloads() -> "dict[str, Callable[[float], CSRMatrix]]":
    """The default autotuning workload set, name → ``builder(scale)``.

    The representative :func:`small_suite` (every behavioural regime of the
    paper's Table 3) plus :func:`slow_frontier` (the slow-collapsing-frontier
    pathology that motivated the lazy policies) — what ``repro tune`` and
    :func:`repro.tune.tune_suite` iterate over by default.
    """
    workloads: dict[str, Callable[[float], CSRMatrix]] = {
        name: SUITE[name].builder for name in small_suite()
    }
    workloads["slow_frontier"] = slow_frontier
    return workloads


def slow_frontier(scale: float = 1.0) -> CSRMatrix:
    """Slow-collapsing-frontier workload (ecology1-like decay profile).

    A 2-D grid with *exactly uniform* 8-neighbour weights: every proposition
    round is tie-dominated, so mutual confirmations trickle in and the active
    edge frontier of :class:`~repro.core.proposer.PropositionEngine` loses
    only a sliver of its edges per round.  This is the regime where eager
    per-round compaction re-gathers nearly the whole buffer every round and
    its factor-phase traffic can exceed the paper-exact reference loop's —
    the ROADMAP regression the lazy/adaptive policies of
    :mod:`repro.core.frontier` close (gated by
    ``benchmarks/test_compaction_budget.py``).

    Deliberately *not* registered in :data:`SUITE`: it is a compaction-policy
    workload, not one of the paper's Table 3 matrices.
    """
    g = _grid_dims(scale, 48)
    stencil = {
        (dy, dx): -1.0
        for dy in (-1, 0, 1)
        for dx in (-1, 0, 1)
        if (dy, dx) != (0, 0)
    }
    return _with_dominant_diagonal(grid2d_stencil(g, stencil))
