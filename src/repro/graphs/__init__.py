"""Workload generators.

* :mod:`~repro.graphs.stencils` — structured grid matrices, including the
  exact ANISO1/2/3 stencils printed in Section 5 of the paper.
* :mod:`~repro.graphs.suite` — synthetic analogues of the paper's SuiteSparse
  test set (Table 3), at configurable scale, with the paper's reported
  numbers attached for side-by-side reporting.
* :mod:`~repro.graphs.random_graphs` — random graphs, forests and
  [0,2]-factors with ground truth, used by the unit and property tests.
"""

from .external import find_external, load_or_build
from .paper_example import TABLE1_ROW, figure1_graph, table1_adjacency
from .random_graphs import (
    random_02_factor,
    random_linear_forest,
    random_spd_system,
    random_weighted_graph,
)
from .stencils import (
    aniso1,
    aniso2,
    aniso3,
    aniso_diagonal_permutation,
    grid2d_stencil,
    grid3d_stencil,
    poisson2d,
    poisson3d,
)
from .suite import (
    SUITE,
    SuiteMatrix,
    build_matrix,
    slow_frontier,
    small_suite,
    suite_names,
    tuning_workloads,
)

__all__ = [
    "SUITE",
    "SuiteMatrix",
    "TABLE1_ROW",
    "figure1_graph",
    "table1_adjacency",
    "aniso1",
    "aniso2",
    "aniso3",
    "aniso_diagonal_permutation",
    "build_matrix",
    "find_external",
    "grid2d_stencil",
    "grid3d_stencil",
    "load_or_build",
    "poisson2d",
    "poisson3d",
    "random_02_factor",
    "random_linear_forest",
    "random_spd_system",
    "random_weighted_graph",
    "slow_frontier",
    "small_suite",
    "suite_names",
    "tuning_workloads",
]
