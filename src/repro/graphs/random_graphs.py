"""Random graph/forest generators with ground truth, for tests.

These exist so that the unit and property tests can verify the parallel
algorithms against *constructed* answers: a random linear forest knows its
path decomposition, a random [0,2]-factor knows which vertices lie on
cycles, and a random SPD system knows its solution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import INDEX_DTYPE, VALUE_DTYPE
from ..core.structures import NO_PARTNER, Factor
from ..sparse.build import from_edges
from ..sparse.csr import CSRMatrix

__all__ = [
    "GroundTruthFactor",
    "random_02_factor",
    "random_linear_forest",
    "random_spd_system",
    "random_weighted_graph",
]


def random_weighted_graph(
    n: int,
    n_edges: int,
    rng: np.random.Generator,
    *,
    weight_low: float = 0.1,
    weight_high: float = 1.0,
) -> CSRMatrix:
    """A random simple undirected weighted graph (duplicates collapse)."""
    u = rng.integers(0, n, n_edges)
    v = rng.integers(0, n, n_edges)
    keep = u != v
    w = rng.uniform(weight_low, weight_high, int(keep.sum()))
    return from_edges(n, u[keep], v[keep], w)


@dataclass(frozen=True)
class GroundTruthFactor:
    """A [0,2]-factor with its known decomposition.

    ``paths`` and ``cycles`` are vertex sequences; for paths the sequence
    runs from one end to the other, for cycles it closes implicitly.
    ``expected_path_id``/``expected_position`` follow the paper's convention
    (path id = minimum end id; position 1 at that end) and are only
    meaningful for the path part.
    """

    factor: Factor
    paths: list[list[int]]
    cycles: list[list[int]]
    expected_path_id: np.ndarray
    expected_position: np.ndarray

    @property
    def cycle_mask(self) -> np.ndarray:
        mask = np.zeros(self.factor.n_vertices, dtype=bool)
        for cyc in self.cycles:
            mask[cyc] = True
        return mask


def _chunk(vertices: np.ndarray, rng: np.random.Generator, max_len: int) -> list[np.ndarray]:
    """Split a vertex pool into random consecutive chunks."""
    chunks: list[np.ndarray] = []
    pos = 0
    while pos < vertices.size:
        length = int(rng.integers(1, max_len + 1))
        chunks.append(vertices[pos : pos + length])
        pos += length
    return chunks


def _build_ground_truth(
    n: int, paths: list[list[int]], cycles: list[list[int]]
) -> GroundTruthFactor:
    neighbors = np.full((n, 2), NO_PARTNER, dtype=INDEX_DTYPE)
    degree = np.zeros(n, dtype=INDEX_DTYPE)

    def link(a: int, b: int) -> None:
        neighbors[a, degree[a]] = b
        neighbors[b, degree[b]] = a
        degree[a] += 1
        degree[b] += 1

    for path in paths:
        for a, b in zip(path, path[1:]):
            link(a, b)
    for cyc in cycles:
        for a, b in zip(cyc, cyc[1:]):
            link(a, b)
        link(cyc[-1], cyc[0])

    path_id = np.full(n, -1, dtype=INDEX_DTYPE)
    position = np.zeros(n, dtype=INDEX_DTYPE)
    for path in paths:
        ordered = path if path[0] <= path[-1] else path[::-1]
        pid = ordered[0]
        for pos, vtx in enumerate(ordered, start=1):
            path_id[vtx] = pid
            position[vtx] = pos
    return GroundTruthFactor(
        factor=Factor(neighbors),
        paths=paths,
        cycles=cycles,
        expected_path_id=path_id,
        expected_position=position,
    )


def random_linear_forest(
    n: int,
    rng: np.random.Generator,
    *,
    max_path_len: int | None = None,
) -> GroundTruthFactor:
    """A random linear forest on ``n`` vertices covering all of them."""
    max_path_len = max_path_len or max(1, n)
    vertices = rng.permutation(n).astype(INDEX_DTYPE)
    paths = [list(map(int, c)) for c in _chunk(vertices, rng, max_path_len)]
    return _build_ground_truth(n, paths, [])


def random_02_factor(
    n: int,
    rng: np.random.Generator,
    *,
    cycle_fraction: float = 0.4,
    max_component: int | None = None,
) -> GroundTruthFactor:
    """A random [0,2]-factor mixing paths and cycles (cycles need ≥ 3)."""
    max_component = max_component or max(3, n // 3)
    vertices = rng.permutation(n).astype(INDEX_DTYPE)
    paths: list[list[int]] = []
    cycles: list[list[int]] = []
    for chunk in _chunk(vertices, rng, max_component):
        members = list(map(int, chunk))
        if len(members) >= 3 and rng.random() < cycle_fraction:
            cycles.append(members)
        else:
            paths.append(members)
    return _build_ground_truth(n, paths, cycles)


def random_spd_system(
    n: int,
    rng: np.random.Generator,
    *,
    density_edges: int | None = None,
) -> tuple[CSRMatrix, np.ndarray, np.ndarray]:
    """A random diagonally dominant SPD matrix, a solution, and its rhs."""
    n_edges = density_edges or 3 * n
    u = rng.integers(0, n, n_edges)
    v = rng.integers(0, n, n_edges)
    keep = u != v
    u, v = u[keep], v[keep]
    w = -rng.uniform(0.1, 1.0, u.size)
    a_off = from_edges(n, u, v, w)
    row_abs = np.zeros(n, dtype=VALUE_DTYPE)
    np.add.at(row_abs, a_off.nnz_rows, np.abs(a_off.data))
    diag = row_abs + rng.uniform(0.5, 1.5, n)
    a = from_edges(n, a_off.to_coo().row, a_off.to_coo().col, a_off.to_coo().val,
                   symmetric=False, diagonal=diag)
    x_true = rng.standard_normal(n)
    b = a.matvec(x_true)
    return a, x_true, b
