"""Structured-grid matrix generators.

Includes the exact 2-D anisotropic stencils of Section 5 of the paper:

* **ANISO1** — strong horizontal coupling (−1.0 on (0,±1)), the strong edges
  already sit on the sub/superdiagonal of the row-major ordering.
* **ANISO2** — the same weights rotated onto the grid anti-diagonal; the
  natural ordering captures almost none of the strong weight (c_id ≈ 0.13).
* **ANISO3** — ANISO2 permuted so the −1.0 coefficients return to the
  sub/superdiagonal (ordering along grid anti-diagonals).

Grid vertices are numbered row-major: ``index = y * g + x`` (2-D) and
``index = (z * g + y) * g + x`` (3-D, x fastest).
"""

from __future__ import annotations

import numpy as np

from .._validation import INDEX_DTYPE, VALUE_DTYPE
from ..errors import ShapeError
from ..sparse.coo import COOMatrix
from ..sparse.csr import CSRMatrix

__all__ = [
    "aniso1",
    "aniso2",
    "aniso3",
    "aniso_diagonal_permutation",
    "grid2d_stencil",
    "grid3d_stencil",
    "poisson2d",
    "poisson3d",
]

Stencil2D = dict[tuple[int, int], float]
Stencil3D = dict[tuple[int, int, int], float]

#: The ANISO1 stencil of Section 5, keyed by (dy, dx).
ANISO1_STENCIL: Stencil2D = {
    (-1, -1): -0.2, (-1, 0): -0.1, (-1, 1): -0.2,
    (0, -1): -1.0, (0, 0): 3.0, (0, 1): -1.0,
    (1, -1): -0.2, (1, 0): -0.1, (1, 1): -0.2,
}

#: The ANISO2 stencil of Section 5, keyed by (dy, dx).
ANISO2_STENCIL: Stencil2D = {
    (-1, -1): -0.1, (-1, 0): -0.2, (-1, 1): -1.0,
    (0, -1): -0.2, (0, 0): 3.0, (0, 1): -0.2,
    (1, -1): -1.0, (1, 0): -0.2, (1, 1): -0.1,
}


def grid2d_stencil(g: int, stencil: Stencil2D, *, jitter: float = 0.0, seed: int = 0) -> CSRMatrix:
    """Assemble a ``g × g`` grid matrix from a 2-D stencil.

    ``jitter`` optionally perturbs every off-diagonal coefficient
    multiplicatively by ``U(1-jitter, 1+jitter)`` (symmetrically), which the
    synthetic suite uses to break exact ties.
    """
    if g < 1:
        raise ShapeError(f"grid size must be >= 1, got {g}")
    n = g * g
    y, x = np.divmod(np.arange(n, dtype=INDEX_DTYPE), g)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    for (dy, dx), w in stencil.items():
        if w == 0.0:
            continue
        yy = y + dy
        xx = x + dx
        ok = (yy >= 0) & (yy < g) & (xx >= 0) & (xx < g)
        src = np.flatnonzero(ok)
        dst = yy[ok] * g + xx[ok]
        weights = np.full(src.size, w, dtype=VALUE_DTYPE)
        if jitter > 0.0 and (dy, dx) != (0, 0):
            # symmetric jitter: the scale depends on the unordered vertex pair
            lo = np.minimum(src, dst)
            hi = np.maximum(src, dst)
            u = _pair_uniform(lo, hi, seed)
            weights *= 1.0 + jitter * (2.0 * u - 1.0)
        rows.append(src)
        cols.append(dst)
        vals.append(weights)
    coo = COOMatrix(
        row=np.concatenate(rows), col=np.concatenate(cols), val=np.concatenate(vals), shape=(n, n)
    )
    return coo.to_csr()


def _pair_uniform(lo: np.ndarray, hi: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic U[0,1) per unordered vertex pair (symmetric jitter)."""
    h = (lo.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)) ^ (
        hi.astype(np.uint64) * np.uint64(0xC2B2AE3D27D4EB4F)
    )
    h ^= np.uint64(seed)
    h *= np.uint64(0xD6E8FEB86659FD93)
    h ^= h >> np.uint64(32)
    return (h & np.uint64(0xFFFFFFFF)).astype(np.float64) / float(2**32)


def grid3d_stencil(g: int, stencil: Stencil3D, *, gz: int | None = None) -> CSRMatrix:
    """Assemble a ``g × g × gz`` grid matrix from a 3-D stencil (x fastest)."""
    if g < 1:
        raise ShapeError(f"grid size must be >= 1, got {g}")
    gz = g if gz is None else gz
    n = g * g * gz
    idx = np.arange(n, dtype=INDEX_DTYPE)
    z, rem = np.divmod(idx, g * g)
    y, x = np.divmod(rem, g)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    for (dz, dy, dx), w in stencil.items():
        if w == 0.0:
            continue
        zz = z + dz
        yy = y + dy
        xx = x + dx
        ok = (zz >= 0) & (zz < gz) & (yy >= 0) & (yy < g) & (xx >= 0) & (xx < g)
        src = np.flatnonzero(ok)
        dst = (zz[ok] * g + yy[ok]) * g + xx[ok]
        rows.append(src)
        cols.append(dst)
        vals.append(np.full(src.size, w, dtype=VALUE_DTYPE))
    coo = COOMatrix(
        row=np.concatenate(rows), col=np.concatenate(cols), val=np.concatenate(vals), shape=(n, n)
    )
    return coo.to_csr()


def aniso1(g: int) -> CSRMatrix:
    """The ANISO1 problem of Section 5 on a ``g × g`` grid."""
    return grid2d_stencil(g, ANISO1_STENCIL)


def aniso2(g: int) -> CSRMatrix:
    """The ANISO2 problem of Section 5 on a ``g × g`` grid."""
    return grid2d_stencil(g, ANISO2_STENCIL)


def aniso_diagonal_permutation(g: int) -> np.ndarray:
    """Vertex order along grid anti-diagonals.

    Consecutive vertices within an anti-diagonal differ by the offset
    (dy, dx) = (+1, −1) — exactly the −1.0 direction of ANISO2 — so under
    this permutation those coefficients move to the sub/superdiagonal.
    Returns ``perm`` with ``perm[k]`` = old index of new position ``k``.
    """
    n = g * g
    y, x = np.divmod(np.arange(n, dtype=INDEX_DTYPE), g)
    return np.lexsort((y, x + y))


def aniso3(g: int) -> CSRMatrix:
    """ANISO3 = ANISO2 symmetrically permuted along anti-diagonals."""
    return aniso2(g).permute(aniso_diagonal_permutation(g))


def poisson2d(g: int) -> CSRMatrix:
    """Standard 5-point Laplacian on a ``g × g`` grid."""
    return grid2d_stencil(
        g, {(0, 0): 4.0, (0, 1): -1.0, (0, -1): -1.0, (1, 0): -1.0, (-1, 0): -1.0}
    )


def poisson3d(g: int) -> CSRMatrix:
    """Standard 7-point Laplacian on a ``g³`` grid."""
    return grid3d_stencil(
        g,
        {
            (0, 0, 0): 6.0,
            (0, 0, 1): -1.0, (0, 0, -1): -1.0,
            (0, 1, 0): -1.0, (0, -1, 0): -1.0,
            (1, 0, 0): -1.0, (-1, 0, 0): -1.0,
        },
    )
