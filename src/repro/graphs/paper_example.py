"""The paper's running example (Figure 1 / Table 1 / Figure 2).

Table 1 fixes vertex 4's adjacency exactly: neighbours 3, 5, 6, 7, 9 with
weights 0.2, 0.3, 0.9, 0.4, 0.5, charges (+, −, −, +, +) and vertex 4 itself
negative.  Figure 1's full edge set is only drawn, not printed, so the
remainder of the graph here is a *documented reconstruction* that preserves
every property the paper states about the example:

* 10 vertices;
* the [0,2]-factor computed with charging (k = 0, k_m = 0 disabled ... the
  figure runs n = 2, k = 0) contains a cycle through vertices 4, 6 and 7,
  and the weakest confirmed edge of that cycle is {4, 7}, which the
  cycle-breaking step removes ("the match between vertex 4 and 7 is removed
  to break up the cycle", Fig. 1b);
* after breaking, the linear forest decomposes the 10 vertices into 4 paths
  (Figure 2).
"""

from __future__ import annotations

import numpy as np

from ..sparse.build import from_edges
from ..sparse.csr import CSRMatrix

__all__ = ["TABLE1_ROW", "figure1_graph", "table1_adjacency"]

#: Vertex 4's row exactly as printed in Table 1: (weight, column) pairs.
TABLE1_ROW: tuple[tuple[float, int], ...] = (
    (0.2, 3),
    (0.3, 5),
    (0.9, 6),
    (0.4, 7),
    (0.5, 9),
)

#: Charges of the Table 1 columns (True = positive); vertex 4 is negative.
TABLE1_CHARGES: dict[int, bool] = {3: True, 5: False, 6: False, 7: True, 9: True, 4: False}


def table1_adjacency() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR arrays of the single Table 1 row (indptr, indices, values)."""
    indices = np.array([j for _, j in TABLE1_ROW], dtype=np.int64)
    values = np.array([w for w, _ in TABLE1_ROW], dtype=np.float64)
    indptr = np.array([0, len(TABLE1_ROW)], dtype=np.int64)
    return indptr, indices, values


#: Reconstructed undirected edge list (u, v, weight) for the Figure 1 graph.
#: With the paper's default configuration (m = 5, k_m = 0, M ≥ 6) the
#: [0,2]-factor confirms the triangle 4-6-7 (whose weakest edge {4,7} the
#: cycle breaker removes) and the forest decomposes into the four paths
#: (0,1,2), (3,9,8), (4,6,7) and (5).
_FIGURE1_EDGES: tuple[tuple[int, int, float], ...] = (
    # vertex 4's row is Table 1, verbatim:
    (4, 3, 0.2),
    (4, 5, 0.3),
    (4, 6, 0.9),
    (4, 7, 0.4),
    (4, 9, 0.5),
    # reconstruction: a triangle 4-6-7 whose weakest edge is {4,7}:
    (6, 7, 0.8),
    # the remaining vertices and filler edges:
    (0, 1, 0.75),
    (1, 2, 0.6),
    (3, 9, 0.55),
    (8, 9, 0.65),
)


def figure1_graph() -> CSRMatrix:
    """The reconstructed weighted graph of Figure 1 (10 vertices)."""
    u = np.array([e[0] for e in _FIGURE1_EDGES])
    v = np.array([e[1] for e in _FIGURE1_EDGES])
    w = np.array([e[2] for e in _FIGURE1_EDGES])
    return from_edges(10, u, v, w)
