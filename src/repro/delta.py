"""repro.delta — incremental extraction for dynamic graphs.

The public face of the delta engine (:mod:`repro.core.delta`): when the
weighted graph evolves by an edit batch (edge inserts / deletes / reweights),
:func:`apply_edits` updates a previous extraction by recomputing only the
change-invalidated frontier and splicing the affected paths — bit-identical
to a from-scratch run on the edited matrix, at a fraction of the launches and
bytes.  See ``docs/INCREMENTAL.md`` for the update protocol (edit-batch
format, the invalidation-radius argument, the CLI ``repro delta`` subcommand
and the serve ``update`` op).

Typical use::

    from repro import extract_linear_forest
    from repro.delta import EditBatch, apply_edits

    previous = extract_linear_forest(a)
    edits = EditBatch.from_dicts([
        {"u": 3, "v": 7, "w": 0.25},          # insert or reweight
        {"u": 10, "v": 11, "delete": True},   # delete
    ])
    updated = apply_edits(previous, edits, a)
    updated.result.coverage                    # the refreshed extraction
    updated.stats.reused_fraction              # how much warm state survived
    # chain further updates:
    again = apply_edits(updated.result, more_edits, updated.matrix)
"""

from .core.delta import (
    DeltaFallbackWarning,
    DeltaResult,
    DeltaStats,
    EditBatch,
    apply_edits,
    apply_edits_to_matrix,
    invalidation_radius,
)

__all__ = [
    "DeltaFallbackWarning",
    "DeltaResult",
    "DeltaStats",
    "EditBatch",
    "apply_edits",
    "apply_edits_to_matrix",
    "invalidation_radius",
]
