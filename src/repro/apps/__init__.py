"""Application-level helpers built on the public API.

The paper's introduction motivates linear forests with concrete
applications; the two that make sense without external systems live here as
tested library code (the scripts in ``examples/`` are thin drivers over
these):

* :mod:`~repro.apps.superstring` — shortest-superstring approximation via
  maximal path sets (the DNA-sequencing motivation).
* :mod:`~repro.apps.coarsening` — directional graph coarsening with
  [0,1]-factors (the algebraic-multigrid motivation).
"""

from .coarsening import CoarseningLevel, directional_coarsening, orientation_histogram
from .superstring import OverlapGraph, assemble_superstring, build_overlap_graph

__all__ = [
    "CoarseningLevel",
    "OverlapGraph",
    "assemble_superstring",
    "build_overlap_graph",
    "directional_coarsening",
    "orientation_histogram",
]
