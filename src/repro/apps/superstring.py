"""Shortest-superstring approximation via maximal linear forests.

*"Computing maximum linear forests is the edge analog of the maximal path
set problem, which is solved to approximate the shortest superstring problem
occurring during DNA sequencing"* (paper, introduction).

Pipeline: reads → undirected overlap graph (edge weight = the larger of the
two directed suffix/prefix overlaps) → maximum-weight linear forest →
merge each path, orienting it to use the larger total overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.factor import ParallelFactorConfig
from ..core.pipeline import extract_linear_forest
from ..sparse.build import from_edges
from ..sparse.csr import CSRMatrix

__all__ = ["OverlapGraph", "assemble_superstring", "build_overlap_graph"]


def _overlap(a: str, b: str, min_overlap: int) -> int:
    """Length of the longest suffix of ``a`` matching a prefix of ``b``."""
    best = 0
    max_k = min(len(a), len(b)) - 1
    for k in range(min_overlap, max_k + 1):
        if a[-k:] == b[:k]:
            best = k
    return best


@dataclass(frozen=True)
class OverlapGraph:
    """Reads plus their pairwise overlap structure."""

    reads: tuple[str, ...]
    graph: CSRMatrix
    directed_overlaps: dict[tuple[int, int], int]

    @property
    def n_reads(self) -> int:
        return len(self.reads)


def build_overlap_graph(reads: list[str], *, min_overlap: int = 4) -> OverlapGraph:
    """All-pairs overlap computation (quadratic; fine for read sets of
    hundreds — a production assembler would use suffix structures)."""
    n = len(reads)
    ov: dict[tuple[int, int], int] = {}
    u_list: list[int] = []
    v_list: list[int] = []
    w_list: list[float] = []
    for i in range(n):
        for j in range(i + 1, n):
            w_ij = _overlap(reads[i], reads[j], min_overlap)
            w_ji = _overlap(reads[j], reads[i], min_overlap)
            if max(w_ij, w_ji) > 0:
                ov[(i, j)] = w_ij
                ov[(j, i)] = w_ji
                u_list.append(i)
                v_list.append(j)
                w_list.append(float(max(w_ij, w_ji)))
    graph = from_edges(n, u_list, v_list, w_list)
    return OverlapGraph(reads=tuple(reads), graph=graph, directed_overlaps=ov)


@dataclass(frozen=True)
class SuperstringResult:
    superstring: str
    chains: list[list[int]]
    overlap_coverage: float

    @property
    def length(self) -> int:
        return len(self.superstring)


def assemble_superstring(
    overlap: OverlapGraph,
    config: ParallelFactorConfig | None = None,
) -> SuperstringResult:
    """Chain the reads along a maximum-weight linear forest and merge.

    Every read appears as a substring of the result exactly once; chains are
    concatenated in path-id order.
    """
    config = config or ParallelFactorConfig(n=2, max_iterations=10)
    result = extract_linear_forest(overlap.graph, config)
    info = result.paths
    ov = overlap.directed_overlaps
    reads = overlap.reads

    chains: list[list[int]] = []
    parts: list[str] = []
    for pid in info.path_ids:
        members = info.vertices_of(int(pid)).tolist()
        fwd = sum(ov.get((x, y), 0) for x, y in zip(members, members[1:]))
        rev_members = members[::-1]
        rev = sum(ov.get((x, y), 0) for x, y in zip(rev_members, rev_members[1:]))
        order = members if fwd >= rev else rev_members
        chains.append(order)
        merged = reads[order[0]]
        for prev, cur in zip(order, order[1:]):
            k = ov.get((prev, cur), 0)
            merged += reads[cur][k:] if k else reads[cur]
        parts.append(merged)
    return SuperstringResult(
        superstring="".join(parts),
        chains=chains,
        overlap_coverage=result.coverage,
    )
