"""Directional graph coarsening with [0,1]-factors (AMG motivation).

*"Linear forests, which contain many strong edges, are also used for
directional coarsening in algebraic multigrid"* (paper, introduction).
:func:`directional_coarsening` builds a hierarchy of matched/aggregated
graphs; :func:`orientation_histogram` classifies matched pairs by grid
direction for structured problems, quantifying how well the matching tracks
the anisotropy (semicoarsening).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.factor import ParallelFactorConfig, parallel_factor
from ..solvers.coarsen import GHOST, CoarseGraph, coarsen_by_matching
from ..sparse.build import prepare_graph
from ..sparse.csr import CSRMatrix

__all__ = ["CoarseningLevel", "directional_coarsening", "orientation_histogram"]


@dataclass(frozen=True)
class CoarseningLevel:
    """One coarsening step: the graph it started from and its aggregation."""

    graph: CSRMatrix
    coarse: CoarseGraph

    @property
    def n_fine(self) -> int:
        return self.graph.n_rows

    @property
    def n_coarse(self) -> int:
        return self.coarse.n_coarse

    @property
    def coarsening_ratio(self) -> float:
        return self.n_coarse / max(self.n_fine, 1)

    @property
    def matched_fraction(self) -> float:
        """Fraction of fine vertices inside a matched pair."""
        singles = int(self.coarse.singleton_mask.sum())
        return (self.n_fine - singles) / max(self.n_fine, 1)


def directional_coarsening(
    a: CSRMatrix,
    *,
    levels: int = 3,
    config: ParallelFactorConfig | None = None,
) -> list[CoarseningLevel]:
    """Repeatedly match-and-aggregate along the strongest couplings."""
    config = config or ParallelFactorConfig(n=1, max_iterations=8, m=5, k_m=0)
    out: list[CoarseningLevel] = []
    graph = prepare_graph(a)
    for _ in range(levels):
        if graph.nnz == 0 or graph.n_rows <= 2:
            break
        matching = parallel_factor(graph, config).factor
        coarse = coarsen_by_matching(graph, matching)
        out.append(CoarseningLevel(graph=graph, coarse=coarse))
        if coarse.n_coarse >= graph.n_rows:
            break
        graph = coarse.graph
    return out


def orientation_histogram(coarse: CoarseGraph, grid: int) -> dict[str, int]:
    """Classify matched pairs of a 2-D row-major grid by direction."""
    counts = {"horizontal": 0, "vertical": 0, "diagonal": 0, "singleton": 0}
    for u, v in coarse.aggregates:
        if v == GHOST:
            counts["singleton"] += 1
            continue
        yu, xu = divmod(int(u), grid)
        yv, xv = divmod(int(v), grid)
        if yu == yv:
            counts["horizontal"] += 1
        elif xu == xv:
            counts["vertical"] += 1
        else:
            counts["diagonal"] += 1
    return counts
