"""The paper's primary contribution: [0,n]-factors and linear forests.

Layout (paper section in parentheses):

* :mod:`~repro.core.structures` — the :class:`Factor` representation (§3.1).
* :mod:`~repro.core.charge` — MD5-style vertex charging (§3.2, §4.1).
* :mod:`~repro.core.greedy` — sequential greedy [0,n]-factor, Algorithm 1.
* :mod:`~repro.core.factor` — parallel [0,n]-factor, Algorithm 2 (§3.2, §4.1).
* :mod:`~repro.core.coverage` — weight-coverage metrics, Equations 3–5.
* :mod:`~repro.core.scan` — the bidirectional scan engine, Algorithm 3 (§4.2).
* :mod:`~repro.core.frontier` — frontier-compaction policies shared by the
  proposition and scan engines (eager/never/lazy/adaptive; bit-identical).
* :mod:`~repro.core.cycles` — cycle identification and weakest-edge breaking
  (§3.3 step 1).
* :mod:`~repro.core.paths` — path ids and positions (§3.3 step 2).
* :mod:`~repro.core.permutation` — tridiagonalising permutation (§3.3 step 3).
* :mod:`~repro.core.extraction` — coefficient extraction (§3.3 step 4, §4.3).
* :mod:`~repro.core.pipeline` — the end-to-end linear-forest extraction with
  the Figure 6 timing breakdown.
* :mod:`~repro.core.partition` / :mod:`~repro.core.sharded` — 1-D vertex
  partitioning and the sharded multi-device pipeline with halo exchange
  (bit-identical to the single-device engines; see ``docs/SHARDING.md``).
* :mod:`~repro.core.delta` — incremental extraction for dynamic graphs:
  edit batches, invalidation frontier, frontier-local recompute and splice
  (bit-identical to a from-scratch run; see ``docs/INCREMENTAL.md``).
* :mod:`~repro.core.sequential_forest` — the sequential CPU reference used as
  the Figure 5 baseline.
"""

from .boruvka import SpanningForest, boruvka_forest
from .charge import vertex_charges
from .coloring import color_graph, is_valid_coloring
from .coverage import coverage, factor_weight, graph_weight, identity_coverage
from .cycles import break_cycles, detect_cycles
from .delta import (
    DeltaFallbackWarning,
    DeltaResult,
    DeltaStats,
    EditBatch,
    apply_edits,
    apply_edits_to_matrix,
    invalidation_radius,
)
from .extraction import TridiagonalSystem, extract_tridiagonal
from .factor import ParallelFactorConfig, ParallelFactorResult, parallel_factor
from .frontier import (
    AdaptiveCompaction,
    CompactionDecision,
    CompactionPolicy,
    EagerCompaction,
    LazyCompaction,
    NeverCompaction,
    resolve_compaction,
)
from .greedy import greedy_factor
from .partition import VertexPartition
from .paths import PathInfo, identify_paths, paths_from_scan
from .permutation import forest_permutation, is_tridiagonal_under
from .pipeline import LinearForestResult, extract_linear_forest
from .rcm import band_weight_fraction, bandwidth, rcm_ordering
from .scan import (
    AddOperator,
    BidirectionalScan,
    FusedOperator,
    MinEdgeOperator,
    ScanResult,
)
from .sequential_forest import sequential_linear_forest
from .sharded import ShardedScan, extract_linear_forest_sharded, resolve_devices
from .serialization import (
    load_factor,
    load_forest_ordering,
    save_factor,
    save_forest_ordering,
)
from .structures import Factor

__all__ = [
    "AdaptiveCompaction",
    "AddOperator",
    "BidirectionalScan",
    "CompactionDecision",
    "CompactionPolicy",
    "DeltaFallbackWarning",
    "DeltaResult",
    "DeltaStats",
    "EagerCompaction",
    "EditBatch",
    "Factor",
    "FusedOperator",
    "LazyCompaction",
    "LinearForestResult",
    "MinEdgeOperator",
    "NeverCompaction",
    "ScanResult",
    "ParallelFactorConfig",
    "ParallelFactorResult",
    "PathInfo",
    "ShardedScan",
    "SpanningForest",
    "TridiagonalSystem",
    "VertexPartition",
    "apply_edits",
    "apply_edits_to_matrix",
    "band_weight_fraction",
    "bandwidth",
    "boruvka_forest",
    "break_cycles",
    "color_graph",
    "is_valid_coloring",
    "coverage",
    "detect_cycles",
    "extract_linear_forest",
    "extract_linear_forest_sharded",
    "extract_tridiagonal",
    "factor_weight",
    "forest_permutation",
    "graph_weight",
    "greedy_factor",
    "identify_paths",
    "identity_coverage",
    "invalidation_radius",
    "is_tridiagonal_under",
    "load_factor",
    "load_forest_ordering",
    "parallel_factor",
    "paths_from_scan",
    "rcm_ordering",
    "resolve_compaction",
    "resolve_devices",
    "save_factor",
    "save_forest_ordering",
    "sequential_linear_forest",
    "vertex_charges",
]
