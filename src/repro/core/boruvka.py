"""Vectorized Borůvka maximum/minimum spanning forests.

The paper's Related Work positions [0,n]-factors against MST algorithms:
*"MST algorithms compute an acyclic [0,n']-factor for an unconstrained n'
... the main difference is that MST algorithms keep track of connected
components to avoid cycles during construction, which requires irregular
data structures and limits parallelism to the number of currently connected
components."*

This module implements that comparison point: a data-parallel Borůvka — per
round, every component selects its best incident edge (a segmented
reduction, exactly the irregular per-component step the paper criticises),
selected edges merge components via pointer jumping.  The result is a
spanning forest with *unbounded* vertex degree; the extension benchmark
contrasts its weight coverage and degree distribution with the degree-2
linear forest.

Ties are broken by the unique (weight, min id, max id) edge ordering, which
also guarantees the per-round selection is acyclic apart from mutual pairs
(resolved by keeping the smaller root).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import INDEX_DTYPE, check_square
from ..errors import FactorError
from ..sparse.csr import CSRMatrix

__all__ = ["SpanningForest", "boruvka_forest"]


@dataclass(frozen=True)
class SpanningForest:
    """Edges of a spanning forest plus per-vertex component labels."""

    u: np.ndarray
    v: np.ndarray
    component: np.ndarray

    @property
    def n_edges(self) -> int:
        return int(self.u.size)

    @property
    def n_components(self) -> int:
        return int(np.unique(self.component).size)

    def degrees(self) -> np.ndarray:
        deg = np.zeros(self.component.size, dtype=INDEX_DTYPE)
        np.add.at(deg, self.u, 1)
        np.add.at(deg, self.v, 1)
        return deg

    def total_weight(self, graph: CSRMatrix) -> float:
        if self.n_edges == 0:
            return 0.0
        return float(np.abs(graph.gather(self.u, self.v)).sum())


def _compress(parent: np.ndarray) -> np.ndarray:
    """Full pointer-jumping compression to root labels."""
    while True:
        grand = parent[parent]
        if np.array_equal(grand, parent):
            return parent
        parent = grand


def boruvka_forest(graph: CSRMatrix, *, maximize: bool = True) -> SpanningForest:
    """Compute a maximum (default) or minimum spanning forest.

    ``graph`` must be a prepared adjacency (symmetric, non-negative
    weights, zero diagonal).
    """
    n = check_square(graph.shape)
    if graph.nnz and bool((graph.data < 0).any()):
        raise FactorError("boruvka_forest expects non-negative prepared weights")
    rows = graph.nnz_rows
    cols = graph.indices
    weights = graph.data if maximize else -graph.data

    component = np.arange(n, dtype=INDEX_DTYPE)
    forest_u: list[np.ndarray] = []
    forest_v: list[np.ndarray] = []

    # at most log2(n) rounds: components at least halve while edges remain
    for _ in range(max(1, int(np.ceil(np.log2(max(n, 2)))) + 1)):
        cu = component[rows]
        cv = component[cols]
        cross = cu != cv
        if not bool(cross.any()):
            break
        # per-component best outgoing edge under the unique
        # (weight, min id, max id) order
        cc = cu[cross]
        w = weights[cross]
        eu = rows[cross]
        ev = cols[cross]
        lo = np.minimum(eu, ev)
        hi = np.maximum(eu, ev)
        order = np.lexsort((hi, lo, -w, cc))
        cc_sorted = cc[order]
        first = np.ones(cc_sorted.size, dtype=bool)
        first[1:] = cc_sorted[1:] != cc_sorted[:-1]
        sel = order[first]
        su, sv = eu[sel], ev[sel]

        # union: root of u's component points to root of v's component.
        # With the strict global edge order the only cycles in this
        # functional graph are mutual pairs; both partners are rerooted at
        # the smaller id.
        parent = np.arange(n, dtype=INDEX_DTYPE)
        ru = component[su]
        rv = component[sv]
        parent[ru] = rv
        mutual = parent[parent[ru]] == ru
        a = ru[mutual]
        parent[a] = np.minimum(a, parent[a])
        component = _compress(parent)[component]

        # dedupe mutual pairs (each undirected edge selected at most twice)
        key = np.minimum(su, sv) * n + np.maximum(su, sv)
        _, unique_idx = np.unique(key, return_index=True)
        forest_u.append(su[unique_idx])
        forest_v.append(sv[unique_idx])

    if forest_u:
        u = np.concatenate(forest_u)
        v = np.concatenate(forest_v)
    else:
        u = np.empty(0, dtype=INDEX_DTYPE)
        v = np.empty(0, dtype=INDEX_DTYPE)
    return SpanningForest(u=u, v=v, component=component)
