"""1-D vertex-range partitioning for the sharded pipeline.

The sharded engine (:mod:`repro.core.sharded`) distributes the pipeline over
a :class:`~repro.device.device.DeviceGroup` by splitting the vertex ids into
``n_shards`` contiguous ranges — the classic 1-D block partition of
distributed SpMV.  Contiguity is what makes the split cheap *and* exact:

* CSR rows of one shard are one contiguous slice of ``indptr``/``indices``;
* every per-row kernel of the pipeline (proposition, mutualization, the
  scan's scatter, band extraction) writes only rows it owns, so per-shard
  results concatenate into the single-device arrays bit for bit;
* ownership of any vertex id is one ``searchsorted`` into the range bounds.

Empty shards are legal (``n_vertices < n_shards`` simply leaves the tail
shards empty) — the engine skips their launches entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .._validation import INDEX_DTYPE
from ..errors import ShapeError

__all__ = ["VertexPartition"]


@dataclass(frozen=True)
class VertexPartition:
    """Contiguous vertex ranges ``[bounds[s], bounds[s+1])`` per shard.

    ``bounds`` has length ``n_shards + 1``, starts at 0, ends at
    ``n_vertices`` and is non-decreasing; equal consecutive bounds denote an
    empty shard.
    """

    bounds: np.ndarray

    def __post_init__(self) -> None:
        bounds = np.ascontiguousarray(self.bounds, dtype=INDEX_DTYPE)
        if bounds.ndim != 1 or bounds.size < 2:
            raise ShapeError("partition bounds must be 1-D with >= 2 entries")
        if int(bounds[0]) != 0:
            raise ShapeError(f"partition bounds must start at 0, got {bounds[0]}")
        if bool((np.diff(bounds) < 0).any()):
            raise ShapeError("partition bounds must be non-decreasing")
        object.__setattr__(self, "bounds", bounds)

    @classmethod
    def uniform(cls, n_vertices: int, n_shards: int) -> "VertexPartition":
        """Split ``[0, n_vertices)`` into ``n_shards`` near-equal ranges.

        Shard ``s`` receives ``[floor(s*n/S), floor((s+1)*n/S))``; sizes
        differ by at most one, and shards beyond ``n_vertices`` are empty.
        """
        if n_vertices < 0:
            raise ShapeError(f"n_vertices must be >= 0, got {n_vertices}")
        if n_shards < 1:
            raise ShapeError(f"n_shards must be >= 1, got {n_shards}")
        cuts = np.arange(n_shards + 1, dtype=np.int64)
        return cls(bounds=(cuts * n_vertices) // n_shards)

    # -- queries -----------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return int(self.bounds[-1])

    @property
    def n_shards(self) -> int:
        return int(self.bounds.size - 1)

    @property
    def sizes(self) -> np.ndarray:
        """Vertex count per shard."""
        return np.diff(self.bounds)

    def range_of(self, shard: int) -> tuple[int, int]:
        """Half-open vertex range ``[lo, hi)`` of one shard."""
        if not 0 <= shard < self.n_shards:
            raise ShapeError(f"shard must be in [0, {self.n_shards}), got {shard}")
        return int(self.bounds[shard]), int(self.bounds[shard + 1])

    def is_empty(self, shard: int) -> bool:
        lo, hi = self.range_of(shard)
        return lo == hi

    def owner_of(self, ids: np.ndarray) -> np.ndarray:
        """Shard index owning each vertex id.

        With empty shards several bounds coincide; ``searchsorted(...,
        side="right") - 1`` resolves the tie to the one non-empty shard that
        actually contains the id.
        """
        ids = np.asarray(ids)
        if ids.size and (
            bool((ids < 0).any()) or bool((ids >= self.n_vertices).any())
        ):
            raise ShapeError(
                f"vertex ids must be in [0, {self.n_vertices}) to have an owner"
            )
        return np.searchsorted(self.bounds, ids, side="right").astype(INDEX_DTYPE) - 1

    def __iter__(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(shard, lo, hi)`` for every shard, empty ones included."""
        for s in range(self.n_shards):
            lo, hi = self.range_of(s)
            yield s, lo, hi

    def __len__(self) -> int:
        return self.n_shards

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VertexPartition(n_vertices={self.n_vertices}, "
            f"n_shards={self.n_shards}, sizes={self.sizes.tolist()})"
        )
