"""Sharded multi-device linear-forest extraction with halo exchange.

The pipeline of the paper distributes cleanly over a 1-D vertex partition
(:class:`~repro.core.partition.VertexPartition`) because every one of its
kernels is *row-local*: the proposition selects per CSR row, mutualization
writes per proposing vertex, the scan's scatter writes per (vertex, lane),
and band extraction writes per matrix row.  Each shard of a
:class:`~repro.device.device.DeviceGroup` therefore computes exactly the
rows it owns, and only the *reads* of remote state cross the
:class:`~repro.device.interconnect.Interconnect`:

========= =============================================================
tag       halo protocol step
========= =============================================================
``halo.degree``   degrees of remote proposal targets (propose round)
``halo.charges``  charge flags of remote targets (charged rounds only)
``halo.props``    remote proposal rows pulled for the mutuality check
``halo.scan``     remote far tuples of the bidirectional scan's gather
``halo.bands``    band values scattered into a remote permuted range
========= =============================================================

**The bit-identity argument** (property-tested in
``tests/properties/test_shard_properties.py``): the proposition's top-n
selection is a per-row rank over the row's eligible nonzeros
(:func:`repro.sparse.topn.top_n_per_row` sorts ``(row, -value, position)``
— position offsets within a contiguous row slice preserve order), the
mutual confirm assigns slots by per-vertex occurrence rank, and the scan
performs all gathers of a step before any scatter (one concurrent launch
per shard, exactly the synchronized halo-exchange step of a real multi-GPU
code).  Computing each of these per shard and concatenating therefore
reproduces the single-device arrays *bit for bit*, for every shard count,
dtype and compaction policy — the same correctness contract every engine
in this repo lives by.

Frontier compaction happens per shard: each shard owns the live mask of
its edge frontier and its scan candidate lists, and consults the (shared)
:class:`~repro.core.frontier.CompactionPolicy` against its *local* dead
fraction.  Decisions may differ from the single-device run — compaction
only ever moves traffic, never results.
"""

from __future__ import annotations

import os
from contextlib import ExitStack

import numpy as np

from .._validation import INDEX_DTYPE, VALUE_DTYPE, check_square
from ..device.device import DeviceGroup
from ..device.profiler import TimingBreakdown
from ..errors import ConfigError, ScanError, ShapeError
from ..obs import current_metrics, trace_span
from ..sparse.build import prepare_graph
from ..sparse.csr import CSRMatrix
from ..sparse.topn import validate_proposition_weights
from .charge import vertex_charges
from .coverage import coverage as coverage_of
from .cycles import break_cycles
from .extraction import TridiagonalSystem
from .factor import ParallelFactorConfig, ParallelFactorResult
from .frontier import (
    CompactionDecision,
    FrontierState,
    record_decision,
    resolve_compaction,
    wants_auto,
)
from .partition import VertexPartition
from .paths import paths_from_scan
from .permutation import forest_permutation, inverse_permutation
from .pipeline import (
    PHASE_EXTRACT,
    PHASE_FACTOR,
    PHASE_SCANS,
    LinearForestResult,
)
from .proposer import (
    DEAD_ELEMENT_BYTES,
    GATHER_ELEMENT_BYTES,
    _scatter_proposals,
    _segmented_rank,
)
from .scan import (
    CAND_DEAD_BYTES,
    CAND_GATHER_BYTES,
    AddOperator,
    FusedOperator,
    MinEdgeOperator,
    ScanResult,
    operator_label,
    scan_steps,
)
from .structures import NO_PARTNER, Factor

__all__ = [
    "ENV_DEVICES",
    "ShardedScan",
    "extract_linear_forest_sharded",
    "resolve_devices",
    "sharded_parallel_factor",
]

#: Environment variable consulted by :func:`resolve_devices` when no
#: explicit device count is given (mirrors ``REPRO_COMPACTION``).
ENV_DEVICES = "REPRO_DEVICES"

#: Interconnect bytes per remote vertex whose degree a proposing shard pulls.
_DEGREE_HALO_BYTES = 8
#: Interconnect bytes per remote vertex whose charge flag is pulled.
_CHARGE_HALO_BYTES = 1


def resolve_devices(devices: int | str | None = None) -> int | None:
    """Resolve a device count from the argument or ``$REPRO_DEVICES``.

    Returns ``None`` when neither is set — the caller stays on the classic
    single-device path.  Mirrors the ``REPRO_COMPACTION`` convention:
    the explicit argument wins, the environment variable is the ambient
    default, and bad values raise :class:`~repro.errors.ConfigError`
    naming their source.
    """
    if devices is not None:
        try:
            value = int(devices)
        except (TypeError, ValueError):
            raise ConfigError(f"devices must be an integer, got {devices!r}") from None
        if value < 1:
            raise ConfigError(f"devices must be >= 1, got {value}")
        return value
    raw = os.environ.get(ENV_DEVICES, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{ENV_DEVICES} must be an integer device count, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigError(f"{ENV_DEVICES} must be >= 1, got {value}")
    return value


def _halo(
    group: DeviceGroup,
    partition: VertexPartition,
    shard: int,
    ids: np.ndarray,
    nbytes_per_id: int,
    tag: str,
    *,
    push: bool = False,
) -> None:
    """Meter one halo exchange: ``ids`` are the *remote* vertex ids a shard
    touches (deduplicated here — one message per remote row per step), and
    the transfer is grouped per owning peer device.  ``push=False`` pulls
    from the owner, ``push=True`` ships shard-computed values to it."""
    ids = np.asarray(ids)
    if ids.size == 0:
        return
    owners = partition.owner_of(np.unique(ids))
    me = group[shard].name
    for other, count in zip(*np.unique(owners, return_counts=True)):
        other = int(other)
        if other == shard:
            continue
        src, dst = (me, group[other].name) if push else (group[other].name, me)
        group.interconnect.transfer(
            int(count) * nbytes_per_id, src=src, dst=dst, tag=tag
        )


# -- sharded proposition rounds --------------------------------------------


class _ShardProposer:
    """Frontier-compacted proposition rounds over one contiguous row range.

    The per-shard analogue of :class:`~repro.core.proposer.PropositionEngine`:
    the pre-sorted ``(row, -value, position)`` key is hoisted out of the
    rounds, only the charge mask is recomputed per round, and the compaction
    policy decides when the shard's dead edges are physically gathered out.
    ``degree``/``charges``/``confirmed`` stay *global* arrays — reads of
    entries owned by other shards are the metered halo.
    """

    def __init__(
        self,
        graph: CSRMatrix,
        partition: VertexPartition,
        shard: int,
        n: int,
        policy,
    ):
        lo, hi = partition.range_of(shard)
        self.lo, self.hi = lo, hi
        self.shard = shard
        self.n = n
        self.policy = policy
        s0, s1 = int(graph.indptr[lo]), int(graph.indptr[hi])
        rows = graph.nnz_rows[s0:s1]
        cols = graph.indices[s0:s1]
        vals = np.asarray(graph.data[s0:s1], dtype=VALUE_DTYPE)
        position = np.arange(rows.size, dtype=INDEX_DTYPE)
        order = np.lexsort((position, -vals, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        live = cols != rows
        if not bool(live.all()):
            rows, cols, vals = rows[live], cols[live], vals[live]
        self._rows = rows
        self._cols = cols
        self._vals = vals
        self._live: np.ndarray | None = None
        self.frontier_size = int(rows.size)
        self.total_edges = s1 - s0
        self.decisions: list[CompactionDecision] = []
        self.gathered_elements = 0
        self._recompute_segments()

    def _recompute_segments(self) -> None:
        n_local = self.hi - self.lo
        self._rows_local = (self._rows - self.lo).astype(INDEX_DTYPE)
        counts = np.bincount(self._rows_local, minlength=n_local).astype(INDEX_DTYPE)
        starts = np.zeros(n_local, dtype=INDEX_DTYPE)
        if n_local > 1:
            np.cumsum(counts[:-1], out=starts[1:])
        self._row_starts = starts
        self._row_counts = counts

    def live_cols(self) -> np.ndarray:
        """Proposal-target columns of the still-live frontier entries."""
        if self._live is None:
            return self._cols
        return self._cols[self._live]

    def propose(
        self,
        confirmed: np.ndarray,
        degree: np.ndarray,
        charges: np.ndarray | None,
        launch,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One round over this shard's rows; returns the local proposal
        slots ``(hi-lo, n)`` and per-row counts — bit-identical to the
        corresponding rows of :func:`repro.core.factor.propose_edges`."""
        n = self.n
        lo, hi = self.lo, self.hi
        rows, cols, vals = self._rows, self._cols, self._vals
        capacity = n - degree
        if charges is None:
            eligible = (
                np.ones(rows.size, dtype=bool)
                if self._live is None
                else self._live.copy()
            )
        else:
            eligible = charges[rows] != charges[cols]
            if self._live is not None:
                eligible &= self._live
        rank = _segmented_rank(
            self._rows_local, eligible, self._row_starts, self._row_counts, hi - lo
        )
        selected = eligible & (rank < capacity[rows])
        prop_cols, prop_vals, counts = _scatter_proposals(
            self._rows_local, cols, vals, selected, rank, hi - lo, n
        )
        if launch is not None:
            launch.reads(rows, cols, degree[lo:hi], vals[: int(counts.sum())])
            if charges is not None:
                launch.reads(charges[lo:hi])
            if self._live is not None:
                launch.reads(self._live)
            launch.writes(prop_cols, prop_vals, counts)
            launch.telemetry(
                active_lanes=self.frontier_size, total_lanes=self.total_edges
            )
        return prop_cols, counts

    def compact(self, confirmed: np.ndarray, *, launch, rounds_remaining: int) -> int:
        """Retire this shard's permanently ineligible edges (same keep mask
        as the single-device engine, restricted to the shard's slice)."""
        n = self.n
        rows, cols = self._rows, self._cols
        if rows.size == 0:
            return 0
        degree = (confirmed != NO_PARTNER).sum(axis=1).astype(INDEX_DTYPE)
        keep = (degree[rows] < n) & (degree[cols] < n)
        keep &= ~(confirmed[rows] == cols[:, None]).any(axis=1)
        live = keep if self._live is None else (keep & self._live)
        n_live = int(live.sum())
        newly_dead = self.frontier_size - n_live
        dead = int(rows.size) - n_live
        if dead == 0:
            return 0
        decision = self.policy.decide(
            FrontierState(
                live=n_live,
                dead=dead,
                gather_element_bytes=GATHER_ELEMENT_BYTES,
                dead_element_bytes=DEAD_ELEMENT_BYTES,
                rounds_remaining=rounds_remaining,
            )
        )
        self.decisions.append(decision)
        record_decision(decision, engine="proposition", launch=launch)
        self.frontier_size = n_live
        if decision.compact:
            if launch is not None:
                launch.reads(rows, cols, self._vals, confirmed[self.lo : self.hi])
            self._rows = rows[live]
            self._cols = cols[live]
            self._vals = self._vals[live]
            self._live = None
            self.gathered_elements += 3 * n_live
            self._recompute_segments()
            if launch is not None:
                launch.writes(self._rows, self._cols, self._vals)
        else:
            self._live = live
            if launch is not None:
                launch.reads(rows, cols, confirmed[self.lo : self.hi])
                launch.writes(live)
        return newly_dead


def _confirm_rows(
    confirmed: np.ndarray,
    degree: np.ndarray,
    prop_cols: np.ndarray,
    lo: int,
    hi: int,
) -> int:
    """:func:`repro.core.factor._confirm_mutual` restricted to rows
    ``[lo, hi)`` — the slot assignment is a per-vertex occurrence rank, so
    the restriction writes exactly the global result's rows."""
    local = prop_cols[lo:hi]
    valid = local != NO_PARTNER
    v_local, slots = np.nonzero(valid)
    if v_local.size == 0:
        return 0
    v_idx = (v_local + lo).astype(INDEX_DTYPE)
    w = local[v_local, slots]
    mutual = (prop_cols[w] == v_idx[:, None]).any(axis=1)
    new_v = v_idx[mutual]
    new_w = w[mutual]
    if new_v.size == 0:
        return 0
    occ = np.arange(new_v.size, dtype=INDEX_DTYPE) - np.searchsorted(
        new_v, new_v, side="left"
    )
    confirmed[new_v, degree[new_v] + occ] = new_w
    return int(new_v.size)


def sharded_parallel_factor(
    graph: CSRMatrix,
    config: ParallelFactorConfig | None = None,
    *,
    group: DeviceGroup,
    partition: VertexPartition | None = None,
    coverage_matrix: CSRMatrix | None = None,
    compaction=None,
    charge_ids: np.ndarray | None = None,
) -> ParallelFactorResult:
    """Algorithm 2 across the shards of a device group.

    Control flow mirrors :func:`repro.core.factor.parallel_factor` round for
    round (same convergence conditions on the *global* proposal count and
    frontier), with per-shard charge/propose/mutualize launches and halo
    metering on the group's interconnect.  The returned factor is
    bit-identical to the single-device run.
    """
    config = config or ParallelFactorConfig()
    n_vertices = graph.n_rows
    n = config.n
    if graph.n_rows != graph.n_cols:
        raise ShapeError("graph adjacency must be square")
    validate_proposition_weights(graph.data)
    partition = partition or VertexPartition.uniform(n_vertices, len(group))
    _check_layout(partition, group, n_vertices)
    policy = resolve_compaction(compaction, graph=graph)

    confirmed = np.full((n_vertices, n), NO_PARTNER, dtype=INDEX_DTYPE)
    coverage_history: list[float] = []
    proposals_history: list[int] = []
    frontier_history: list[int] = []
    m_max: int | None = None
    converged = False
    iterations = 0

    proposers = {
        s: _ShardProposer(graph, partition, s, n, policy)
        for s, lo, hi in partition
        if hi > lo
    }

    def _frontier() -> int:
        return sum(p.frontier_size for p in proposers.values())

    def _track_coverage() -> None:
        if coverage_matrix is not None:
            coverage_history.append(coverage_of(coverage_matrix, Factor(confirmed)))

    with trace_span(
        "parallel-factor",
        category="stage",
        n=n,
        max_iterations=config.max_iterations,
        n_vertices=n_vertices,
        total_edges=graph.nnz,
        compaction=policy.name,
        devices=len(group),
    ) as stage:
        for k in range(config.max_iterations):
            charging = config.charging_enabled(k)
            frontier = _frontier()
            frontier_history.append(frontier)
            iterations = k + 1

            with trace_span(
                f"factor-round[k={k}]",
                category="stage",
                k=k,
                charging=charging,
                frontier=frontier,
            ) as round_span:
                if frontier == 0:
                    proposals_history.append(0)
                    if round_span is not None:
                        round_span.attributes["proposals"] = 0
                    if not charging:
                        m_max = k + 1
                        converged = True
                        _track_coverage()
                        break
                    _track_coverage()
                    continue

                charges = None
                if charging:
                    charges = np.empty(n_vertices, dtype=bool)
                    for s, lo, hi in partition:
                        if lo == hi:
                            continue
                        with group[s].launch(f"charge[k={k}]") as kl:
                            ids = (
                                charge_ids[lo:hi]
                                if charge_ids is not None
                                else np.arange(lo, hi, dtype=np.uint32)
                            )
                            charges[lo:hi] = vertex_charges(
                                hi - lo, k, p=config.p, seed=config.seed, ids=ids
                            )
                            kl.writes(charges[lo:hi])

                degree = (confirmed != NO_PARTNER).sum(axis=1).astype(INDEX_DTYPE)
                prop_cols = np.full((n_vertices, n), NO_PARTNER, dtype=INDEX_DTYPE)
                total_proposals = 0
                for s, prop in proposers.items():
                    if prop.frontier_size == 0:
                        continue  # a converged shard never launches
                    targets = prop.live_cols()
                    remote = targets[(targets < prop.lo) | (targets >= prop.hi)]
                    _halo(group, partition, s, remote, _DEGREE_HALO_BYTES, "halo.degree")
                    if charging:
                        _halo(
                            group, partition, s, remote,
                            _CHARGE_HALO_BYTES, "halo.charges",
                        )
                    with group[s].launch(f"propose[k={k}]") as kl:
                        local_cols, counts = prop.propose(confirmed, degree, charges, kl)
                        prop_cols[prop.lo : prop.hi] = local_cols
                        total_proposals += int(counts.sum())
                proposals_history.append(total_proposals)
                if round_span is not None:
                    round_span.attributes["proposals"] = total_proposals

                if total_proposals == 0:
                    if not charging:
                        m_max = k + 1
                        converged = True
                        _track_coverage()
                        break
                    _track_coverage()
                    continue

                # Mutualize: all shards confirm against the frozen proposal
                # array (concurrent launches, like the scan step), then every
                # shard re-derives its frontier from the updated factor —
                # compaction must observe *all* confirms of the round, or a
                # boundary edge whose far endpoint just saturated would
                # linger in the frontier.
                n_new_total = 0
                with ExitStack() as stack:
                    handles = {}
                    for s, prop in proposers.items():
                        local = prop_cols[prop.lo : prop.hi]
                        has_props = bool((local != NO_PARTNER).any())
                        if prop.frontier_size == 0 and not has_props:
                            continue
                        if has_props:
                            w = local[local != NO_PARTNER]
                            remote_w = w[(w < prop.lo) | (w >= prop.hi)]
                            _halo(
                                group, partition, s, remote_w,
                                n * _DEGREE_HALO_BYTES, "halo.props",
                            )
                        kl = stack.enter_context(
                            group[s].launch(
                                f"mutualize[k={k}]",
                                reads=(local,),
                                writes=(confirmed[prop.lo : prop.hi],),
                            )
                        )
                        handles[s] = kl
                    for s, kl in handles.items():
                        prop = proposers[s]
                        n_new_total += _confirm_rows(
                            confirmed, degree, prop_cols, prop.lo, prop.hi
                        )
                    for s, kl in handles.items():
                        prop = proposers[s]
                        if n_new_total:
                            prop.compact(
                                confirmed,
                                launch=kl,
                                rounds_remaining=config.max_iterations - (k + 1),
                            )
                        kl.telemetry(
                            active_lanes=prop.frontier_size,
                            total_lanes=prop.total_edges,
                        )
                if round_span is not None:
                    round_span.attributes["confirmed_new"] = n_new_total

                _track_coverage()

        if stage is not None:
            stage.attributes.update(
                iterations=iterations, m_max=m_max, converged=converged
            )

    return ParallelFactorResult(
        factor=Factor(confirmed),
        iterations=iterations,
        m_max=m_max,
        converged=converged,
        coverage_history=coverage_history,
        proposals_per_iteration=proposals_history,
        frontier_history=frontier_history,
        compaction_decisions=[d for p in proposers.values() for d in p.decisions],
        gathered_elements=sum(p.gathered_elements for p in proposers.values()),
    )


# -- sharded bidirectional scan --------------------------------------------


class ShardedScan:
    """Algorithm 3's butterfly, sharded by path segment over a device group.

    Each step is one *synchronized halo-exchange round*: every shard's
    launch opens concurrently (via :class:`contextlib.ExitStack`), all
    shards gather their active lanes' far tuples — pulling tuples owned by
    other shards over the interconnect (``halo.scan``) — and only then does
    any shard scatter.  All reads of a step therefore complete before any
    write, exactly the ping-pong discipline of the single-device engine,
    which is what makes the merged pointer-jumping state bit-identical to
    :class:`~repro.core.scan.BidirectionalScan` at every step.

    Candidate lists and compaction verdicts are per shard; a shard whose
    lanes have all clamped stops launching (its peers keep jumping).
    """

    def __init__(
        self,
        factor: Factor,
        partition: VertexPartition,
        group: DeviceGroup,
        *,
        compaction=None,
    ):
        if factor.n > 2:
            raise ScanError(
                f"the bidirectional scan requires a [0,2]-factor, got n={factor.n}"
            )
        _check_layout(partition, group, factor.n_vertices)
        self.factor = factor
        self.partition = partition
        self.group = group
        self._compaction = compaction
        self.policy = None if wants_auto(compaction) else resolve_compaction(compaction)
        n_vertices = factor.n_vertices
        ids = np.arange(n_vertices, dtype=INDEX_DTYPE)
        q0 = np.full((n_vertices, 2), 0, dtype=INDEX_DTYPE)
        for lane in (0, 1):
            if lane < factor.n:
                nbr = factor.neighbors[:, lane]
            else:
                nbr = np.full(n_vertices, NO_PARTNER, dtype=INDEX_DTYPE)
            q0[:, lane] = np.where(nbr == NO_PARTNER, -(ids + 1), nbr)
        self._q0 = q0
        self._ids = ids

    def run(
        self,
        operator,
        graph: CSRMatrix | None = None,
        *,
        steps: int | None = None,
    ) -> ScanResult:
        """Execute the sharded scan; same contract as the solo engine."""
        if self.policy is None:
            self.policy = resolve_compaction(self._compaction, graph=graph)
        n_vertices = self.factor.n_vertices
        nominal = scan_steps(n_vertices)
        n_steps = nominal if steps is None else max(0, min(int(steps), nominal))
        label = operator_label(operator)

        q = self._q0.copy()
        payload = {
            name: np.array(arr, copy=True)
            for name, arr in operator.init(self.factor, graph).items()
        }
        names = tuple(payload)

        with trace_span(
            "bidirectional-scan",
            category="stage",
            operator=label,
            steps=n_steps,
            total_lanes=2 * n_vertices,
            compaction=self.policy.name,
            devices=len(self.group),
        ) as stage:
            launches, active_history, decisions = self._run_steps(
                operator, q, payload, names, n_steps, label
            )
            if stage is not None:
                stage.attributes.update(
                    launches=launches, converged=bool((q < 0).all())
                )

        return ScanResult(
            q=q,
            payload=payload,
            steps=n_steps,
            launches=launches,
            active_per_launch=tuple(active_history),
            compaction_decisions=tuple(decisions),
        )

    def _run_steps(self, operator, q, payload, names, n_steps, label):
        ids = self._ids
        group = self.group
        partition = self.partition
        launches = 0
        active_history: list[int] = []
        decisions: list[CompactionDecision] = []
        shards = [(s, lo, hi) for s, lo, hi in partition if hi > lo]
        cand = {s: [ids[lo:hi], ids[lo:hi]] for s, lo, hi in shards}
        # one remote far tuple = the q pair + every payload field pair
        tuple_bytes = 2 * q.dtype.itemsize + sum(
            2 * payload[name].dtype.itemsize for name in names
        )

        for step in range(n_steps):
            work = []
            n_active_total = 0
            for s, lo, hi in shards:
                c0, c1 = cand[s]
                alive0 = q[c0, 0] >= 0
                alive1 = q[c1, 1] >= 0
                idx = (c0[alive0], c1[alive1])
                n_active = int(idx[0].size + idx[1].size)
                n_active_total += n_active
                work.append((s, lo, hi, c0, c1, alive0, alive1, idx, n_active))
            if n_active_total == 0:
                break  # every lane of every shard is a path end

            with ExitStack() as stack:
                handles = {}
                for s, lo, hi, c0, c1, alive0, alive1, idx, n_active in work:
                    if n_active == 0:
                        continue  # this shard has converged; peers continue
                    n_dead = int(c0.size + c1.size) - n_active
                    decision = None
                    dead_reads = ()
                    if n_dead:
                        decision = self.policy.decide(
                            FrontierState(
                                live=n_active,
                                dead=n_dead,
                                gather_element_bytes=CAND_GATHER_BYTES,
                                dead_element_bytes=CAND_DEAD_BYTES,
                                rounds_remaining=n_steps - step,
                            )
                        )
                        decisions.append(decision)
                        if decision.compact:
                            cand[s] = [idx[0], idx[1]]
                        else:
                            dead_reads = (
                                c0[~alive0],
                                q[c0[~alive0], 0],
                                c1[~alive1],
                                q[c1[~alive1], 1],
                            )
                    active_history.append(n_active)
                    kl = stack.enter_context(
                        group[s].launch(
                            f"bidirectional-scan[{label}|step={step}]",
                            active_lanes=n_active,
                            total_lanes=2 * (hi - lo),
                        )
                    )
                    if decision is not None:
                        record_decision(decision, engine="scan", launch=kl)
                        if not decision.compact:
                            kl.reads(*dead_reads)
                    handles[s] = kl
                    launches += 1

                # Gather phase across ALL shards: snapshot every active
                # lane's far tuple (pulling remote tuples over the
                # interconnect) before any shard writes — the multi-device
                # ping-pong barrier.
                gathered = {}
                for s, lo, hi, c0, c1, alive0, alive1, idx, n_active in work:
                    if n_active == 0:
                        continue
                    kl = handles[s]
                    packs = []
                    for lane in (0, 1):
                        sel = idx[lane]
                        if sel.size == 0:
                            packs.append(None)
                            continue
                        far = q[sel, lane]
                        far_q = q[far]
                        far_p = {name: payload[name][far] for name in names}
                        kl.reads(sel, far, far_q, *far_p.values())
                        remote = far[(far < lo) | (far >= hi)]
                        _halo(group, partition, s, remote, tuple_bytes, "halo.scan")
                        packs.append((sel, far_q, far_p))
                    gathered[s] = packs

                # Scatter phase: each shard writes only its own rows/lanes.
                for s, lo, hi, c0, c1, alive0, alive1, idx, n_active in work:
                    if n_active == 0:
                        continue
                    kl = handles[s]
                    for lane, pack in ((0, gathered[s][0]), (1, gathered[s][1])):
                        if pack is None:
                            continue
                        sel, far_q, far_p = pack
                        for j in (0, 1):
                            extend = far_q[:, j] != ids[sel]
                            sub = sel[extend]
                            if sub.size == 0:
                                continue
                            current = {
                                name: payload[name][sub, lane] for name in names
                            }
                            kl.reads(*current.values())
                            contribution = {
                                name: far_p[name][extend, j] for name in far_p
                            }
                            merged = operator.combine(current, contribution)
                            for name in names:
                                payload[name][sub, lane] = merged[name]
                                kl.writes(merged[name])
                            new_q = far_q[extend, j]
                            q[sub, lane] = new_q
                            kl.writes(new_q)

        return launches, active_history, decisions


# -- sharded band extraction -----------------------------------------------


def _sharded_extract_tridiagonal(
    a: CSRMatrix,
    forest: Factor,
    perm: np.ndarray,
    partition: VertexPartition,
    group: DeviceGroup,
) -> TridiagonalSystem:
    """Band extraction sharded by matrix row; values whose permuted position
    lands in another shard's band range ship over the interconnect
    (``halo.bands``)."""
    n = check_square(a.shape)
    new_index = inverse_permutation(perm)
    band_dtype = a.data.dtype
    dl = np.zeros(n, dtype=band_dtype)
    du = np.zeros(n, dtype=band_dtype)
    d = np.zeros(n, dtype=band_dtype)
    coo = a.to_coo()
    value_msg_bytes = int(np.dtype(band_dtype).itemsize) + 8  # value + position
    with trace_span(
        "extract-tridiagonal",
        category="stage",
        n=n,
        nnz=a.nnz,
        dtype=str(band_dtype),
        devices=len(group),
    ):
        for s, lo, hi in partition:
            if lo == hi:
                continue
            e0 = int(np.searchsorted(coo.row, lo, side="left"))
            e1 = int(np.searchsorted(coo.row, hi, side="left"))
            if e0 == e1:
                continue
            rows = coo.row[e0:e1]
            cols = coo.col[e0:e1]
            vals = coo.val[e0:e1]
            with group[s].launch(
                "extract-coefficients",
                reads=(rows, cols, vals),
                writes=(dl[lo:hi], du[lo:hi]),
            ):
                on_diag = rows == cols
                p_diag = new_index[rows[on_diag]]
                d[p_diag] = vals[on_diag]
                off = ~on_diag
                r2 = rows[off]
                c2 = cols[off]
                v2 = vals[off]
                in_forest = forest.contains_edges(r2, c2)
                r2, c2, v2 = r2[in_forest], c2[in_forest], v2[in_forest]
                p_row = new_index[r2]
                p_col = new_index[c2]
                sub = p_col == p_row - 1
                sup = p_col == p_row + 1
                dl[p_row[sub]] = v2[sub]
                du[p_row[sup]] = v2[sup]
                written = np.concatenate([p_diag, p_row[sub], p_row[sup]])
                remote = written[(written < lo) | (written >= hi)]
                _halo(
                    group, partition, s, remote, value_msg_bytes,
                    "halo.bands", push=True,
                )
    return TridiagonalSystem(dl=dl, d=d, du=du)


# -- the sharded pipeline --------------------------------------------------


def _check_layout(
    partition: VertexPartition, group: DeviceGroup, n_vertices: int
) -> None:
    if partition.n_shards != len(group):
        raise ConfigError(
            f"partition has {partition.n_shards} shards for a "
            f"{len(group)}-device group"
        )
    if partition.n_vertices != n_vertices:
        raise ShapeError(
            f"partition covers {partition.n_vertices} vertices, graph has {n_vertices}"
        )


def extract_linear_forest_sharded(
    a: CSRMatrix,
    config: ParallelFactorConfig | None = None,
    *,
    group: DeviceGroup | None = None,
    devices: int | None = None,
    partition: VertexPartition | None = None,
    merged_scan: bool = True,
    compaction=None,
    prepared_graph: CSRMatrix | None = None,
    charge_ids: np.ndarray | None = None,
) -> LinearForestResult:
    """The full pipeline across a device group, bit-identical to
    :func:`repro.core.pipeline.extract_linear_forest` on one device.

    Pass either an existing ``group`` (whose interconnect then carries the
    halo bytes for inspection) or a ``devices`` count (a non-recording group
    is created internally).  ``partition`` defaults to the uniform 1-D
    block partition.  All remaining parameters have the single-device
    pipeline's semantics.
    """
    config = config or ParallelFactorConfig(n=2)
    if config.n != 2:
        raise ValueError(f"linear-forest extraction requires n=2, got n={config.n}")
    if group is None:
        n_dev = resolve_devices(devices)
        if n_dev is None:
            n_dev = 1
        group = DeviceGroup(n_dev, record=False)
    elif devices is not None and int(devices) != len(group):
        raise ConfigError(
            f"devices={devices} does not match the {len(group)}-device group"
        )
    timings = TimingBreakdown()
    metrics = current_metrics()
    halo_before = group.interconnect.total_bytes()

    with trace_span(
        "extract-linear-forest",
        category="run",
        n_vertices=a.n_rows,
        nnz=a.nnz,
        merged_scan=merged_scan,
        dtype=str(a.data.dtype),
        devices=len(group),
    ) as root:
        with timings.phase(PHASE_FACTOR):
            graph = prepared_graph if prepared_graph is not None else prepare_graph(a)
            partition = partition or VertexPartition.uniform(graph.n_rows, len(group))
            _check_layout(partition, group, graph.n_rows)
            policy = resolve_compaction(compaction, graph=graph)
            if root is not None:
                root.attributes["compaction"] = policy.name
            if metrics is not None:
                metrics.counter("shard.runs").inc()
                metrics.gauge("shard.devices").set(len(group))
            factor_result = sharded_parallel_factor(
                graph, config, group=group, partition=partition,
                compaction=policy, charge_ids=charge_ids,
            )

        with timings.phase(PHASE_SCANS):
            if merged_scan:
                scan = ShardedScan(
                    factor_result.factor, partition, group, compaction=policy
                )
                fused = scan.run(FusedOperator((MinEdgeOperator(), AddOperator())), graph)
                broken = break_cycles(factor_result.factor, scan_result=fused)
                if broken.n_cycles == 0:
                    paths = paths_from_scan(fused)
                else:
                    rescans = ShardedScan(
                        broken.forest, partition, group, compaction=policy
                    )
                    paths = paths_from_scan(rescans.run(AddOperator()))
            else:
                cyc = ShardedScan(
                    factor_result.factor, partition, group, compaction=policy
                )
                broken = break_cycles(
                    factor_result.factor, scan_result=cyc.run(MinEdgeOperator(), graph)
                )
                pos = ShardedScan(broken.forest, partition, group, compaction=policy)
                paths = paths_from_scan(pos.run(AddOperator()))
            perm = forest_permutation(paths)

        with timings.phase(PHASE_EXTRACT):
            tridiagonal = _sharded_extract_tridiagonal(
                a, broken.forest, perm, partition, group
            )

        cov = coverage_of(a, broken.forest)
        halo_bytes = group.interconnect.total_bytes() - halo_before
        if metrics is not None:
            metrics.counter("shard.halo.bytes").inc(halo_bytes)
        if root is not None:
            root.attributes.update(
                coverage=cov,
                n_cycles=broken.n_cycles,
                n_paths=paths.n_paths,
                factor_iterations=factor_result.iterations,
                interconnect_bytes=halo_bytes,
            )

    return LinearForestResult(
        graph=graph,
        factor_result=factor_result,
        broken=broken,
        paths=paths,
        perm=perm,
        tridiagonal=tridiagonal,
        coverage=cov,
        timings=timings,
    )
