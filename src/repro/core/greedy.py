"""Sequential greedy [0,n]-factor — Algorithm 1 of the paper.

Edges are visited in order of decreasing absolute weight and added whenever
both endpoints still have degree below ``n``.  For ``n = 1`` this is the
classical greedy matching with weight at least half the maximum-weight
matching; the paper uses the algorithm (for all ``n``) as the quality
baseline of Tables 4 and 5.

Ties in the edge weight are broken deterministically by ``(u, v)``.
"""

from __future__ import annotations

import numpy as np

from .._validation import INDEX_DTYPE
from ..errors import ShapeError
from ..sparse.csr import CSRMatrix
from .structures import NO_PARTNER, Factor

__all__ = ["greedy_factor"]


def greedy_factor(graph: CSRMatrix, n: int) -> Factor:
    """Compute the greedy [0,n]-factor of a prepared graph.

    ``graph`` must be the symmetric non-negative adjacency produced by
    :func:`repro.sparse.build.prepare_graph`.  The core loop is inherently
    sequential (each acceptance changes the feasibility of later edges), so
    this runs as a Python loop over the sorted edge list — it is the paper's
    CPU baseline, not a performance kernel.
    """
    if n < 1:
        raise ShapeError(f"n must be >= 1, got {n}")
    n_vertices = graph.n_rows
    coo = graph.to_coo()
    upper = coo.row < coo.col
    u = coo.row[upper]
    v = coo.col[upper]
    w = np.abs(coo.val[upper])
    order = np.lexsort((v, u, -w))
    u_sorted = u[order].tolist()
    v_sorted = v[order].tolist()

    neighbors = np.full((n_vertices, n), NO_PARTNER, dtype=INDEX_DTYPE)
    degree = [0] * n_vertices
    for a, b in zip(u_sorted, v_sorted):
        da = degree[a]
        db = degree[b]
        if da < n and db < n:
            neighbors[a, da] = b
            neighbors[b, db] = a
            degree[a] = da + 1
            degree[b] = db + 1
    return Factor(neighbors)
