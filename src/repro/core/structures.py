"""The [0,n]-factor representation π (Section 3.1 of the paper).

A [0,n]-factor is a spanning subgraph in which every vertex has degree at
most ``n``.  Functionally, π maps each vertex to the set of its at most ``n``
partners (condition 1), and membership is mutual: ``v ∈ π(w) ⇔ w ∈ π(v)``
(condition 2 requires every included edge to exist in the graph).

The storage is the GPU layout of the paper: an ``(N, n)`` array of partner
ids with ``-1`` padding ("the confirmed edges vector ``x`` of length n·N",
Section 4.1).  Valid entries are compacted to the front of each row.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .._validation import INDEX_DTYPE, require
from ..errors import FactorError, ShapeError

__all__ = ["Factor", "compact_rows"]

#: Padding value for empty partner slots.
NO_PARTNER = -1


def compact_rows(neighbors: np.ndarray) -> np.ndarray:
    """Stably push ``-1`` entries to the end of each row."""
    is_empty = neighbors == NO_PARTNER
    order = np.argsort(is_empty, axis=1, kind="stable")
    return np.take_along_axis(neighbors, order, axis=1)


@dataclass(frozen=True)
class Factor:
    """An immutable [0,n]-factor.

    Attributes
    ----------
    neighbors:
        ``(N, n)`` int64 array; row ``v`` lists π(v), ``-1`` padded at the
        end.
    """

    neighbors: np.ndarray

    def __post_init__(self) -> None:
        neigh = np.ascontiguousarray(self.neighbors, dtype=INDEX_DTYPE)
        require(neigh.ndim == 2, f"neighbors must be 2-D, got ndim={neigh.ndim}")
        object.__setattr__(self, "neighbors", compact_rows(neigh))

    # -- basic queries -----------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return int(self.neighbors.shape[0])

    @property
    def n(self) -> int:
        """The degree bound of the factor."""
        return int(self.neighbors.shape[1])

    @cached_property
    def degrees(self) -> np.ndarray:
        """|π(v)| for every vertex."""
        return (self.neighbors != NO_PARTNER).sum(axis=1).astype(INDEX_DTYPE)

    @property
    def size(self) -> int:
        """Σ|π(v)| — twice the number of edges (the paper's |π(V)| measure)."""
        return int(self.degrees.sum())

    @property
    def edge_count(self) -> int:
        return self.size // 2

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Unique undirected edges as ``(u, v)`` arrays with ``u < v``."""
        n_vertices, n = self.neighbors.shape
        rows = np.repeat(np.arange(n_vertices, dtype=INDEX_DTYPE), n)
        cols = self.neighbors.ravel()
        keep = (cols != NO_PARTNER) & (rows < cols)
        return rows[keep], cols[keep]

    def contains_edges(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Boolean mask: is ``{u[i], v[i]}`` an edge of the factor?"""
        u = np.asarray(u, dtype=INDEX_DTYPE)
        v = np.asarray(v, dtype=INDEX_DTYPE)
        return (self.neighbors[u] == v[..., None]).any(axis=-1)

    # -- derived factors -----------------------------------------------------
    def remove_edges(self, u: np.ndarray, v: np.ndarray) -> "Factor":
        """Return a factor with the listed (undirected) edges removed."""
        u = np.asarray(u, dtype=INDEX_DTYPE)
        v = np.asarray(v, dtype=INDEX_DTYPE)
        neigh = self.neighbors.copy()
        # clear both directions; duplicates in the removal list are harmless
        for a, b in ((u, v), (v, u)):
            slots = neigh[a] == b[..., None]
            rows = np.repeat(a, self.n)[slots.ravel()]
            cols = np.tile(np.arange(self.n), a.size)[slots.ravel()]
            neigh[rows, cols] = NO_PARTNER
        return Factor(neigh)

    def restrict_to(self, keep_mask: np.ndarray) -> "Factor":
        """Drop all edges incident to vertices where ``keep_mask`` is False."""
        keep_mask = np.asarray(keep_mask, dtype=bool)
        if keep_mask.shape != (self.n_vertices,):
            raise ShapeError("keep_mask must have one entry per vertex")
        neigh = self.neighbors.copy()
        neigh[~keep_mask] = NO_PARTNER
        valid = neigh != NO_PARTNER
        dropped = valid & ~keep_mask[np.where(valid, neigh, 0)]
        neigh[dropped] = NO_PARTNER
        return Factor(neigh)

    # -- constructors -----------------------------------------------------
    @staticmethod
    def empty(n_vertices: int, n: int) -> "Factor":
        return Factor(np.full((n_vertices, n), NO_PARTNER, dtype=INDEX_DTYPE))

    @staticmethod
    def from_edge_list(n_vertices: int, n: int, u, v) -> "Factor":
        """Build a factor from undirected edges; raises if a degree exceeds n."""
        u = np.asarray(u, dtype=INDEX_DTYPE)
        v = np.asarray(v, dtype=INDEX_DTYPE)
        neigh = np.full((n_vertices, n), NO_PARTNER, dtype=INDEX_DTYPE)
        deg = np.zeros(n_vertices, dtype=INDEX_DTYPE)
        for a, b in zip(u.tolist(), v.tolist()):
            if a == b:
                raise FactorError(f"self-loop at vertex {a}")
            if deg[a] >= n or deg[b] >= n:
                raise FactorError(f"edge ({a},{b}) exceeds the degree bound {n}")
            neigh[a, deg[a]] = b
            neigh[b, deg[b]] = a
            deg[a] += 1
            deg[b] += 1
        return Factor(neigh)

    # -- validation -----------------------------------------------------
    def validate(self, graph=None) -> None:
        """Check all factor invariants; raises :class:`FactorError`.

        With ``graph`` (a prepared :class:`~repro.sparse.csr.CSRMatrix`) also
        checks condition 2 of the paper: every factor edge exists in the
        graph.
        """
        neigh = self.neighbors
        n_vertices, n = neigh.shape
        valid = neigh != NO_PARTNER
        ids = np.arange(n_vertices, dtype=INDEX_DTYPE)[:, None]
        if bool(((neigh < NO_PARTNER) | (neigh >= n_vertices)).any()):
            raise FactorError("partner id out of range")
        if bool((valid & (neigh == ids)).any()):
            raise FactorError("self-loop in factor")
        # no duplicate partners within a row
        sorted_rows = np.sort(np.where(valid, neigh, np.iinfo(INDEX_DTYPE).max), axis=1)
        if n > 1 and bool(
            ((sorted_rows[:, 1:] == sorted_rows[:, :-1]) & (sorted_rows[:, 1:] != np.iinfo(INDEX_DTYPE).max)).any()
        ):
            raise FactorError("duplicate partner in factor row")
        # mutuality
        rows = np.repeat(ids.ravel(), n)[valid.ravel()]
        cols = neigh.ravel()[valid.ravel()]
        mutual = (neigh[cols] == rows[:, None]).any(axis=1)
        if not bool(mutual.all()):
            bad = rows[~mutual][0], cols[~mutual][0]
            raise FactorError(f"non-mutual factor entry {bad}")
        if graph is not None:
            present = graph.contains(rows, cols)
            if not bool(present.all()):
                bad = rows[~present][0], cols[~present][0]
                raise FactorError(f"factor edge {bad} does not exist in the graph")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Factor):
            return NotImplemented
        if self.neighbors.shape != other.neighbors.shape:
            return False
        # compare as sets per row (slot order is not semantic)
        return bool(
            np.array_equal(np.sort(self.neighbors, axis=1), np.sort(other.neighbors, axis=1))
        )

    def __hash__(self) -> int:  # pragma: no cover - dataclass requirement
        return hash((self.neighbors.shape, self.neighbors.tobytes()))
