"""Amortized edge proposition: sort once, propose every round in O(nnz).

Profiling the pipeline (cf. the optimization workflow the repo follows:
measure first) shows Algorithm 2's rounds are dominated by the global
``lexsort`` inside :func:`repro.sparse.topn.top_n_per_row` — yet the sort
key ``(row, -|weight|, position)`` depends only on the *graph*, not on the
round.  :class:`PreparedProposer` hoists that sort out of the iteration:
per round, only the eligibility mask and a segmented cumulative count remain
(pure O(nnz) passes).

Results are bit-identical to :func:`repro.core.factor.propose_edges` — the
sorted order encodes exactly the Table 1 tie-breaking — which the test-suite
asserts; :func:`repro.core.factor.parallel_factor` uses the prepared path.
"""

from __future__ import annotations

import numpy as np

from .._validation import INDEX_DTYPE, VALUE_DTYPE
from ..errors import ShapeError
from ..sparse.csr import CSRMatrix
from .structures import NO_PARTNER

__all__ = ["PreparedProposer"]


class PreparedProposer:
    """Pre-sorted proposition kernel for repeated rounds on one graph."""

    def __init__(self, graph: CSRMatrix):
        self.graph = graph
        rows = graph.nnz_rows
        nnz = graph.nnz
        position = np.arange(nnz, dtype=INDEX_DTYPE)
        order = np.lexsort((position, -graph.data, rows))
        self._rows = rows[order]
        self._cols = graph.indices[order]
        self._vals = graph.data[order]
        # segment extents are unchanged (row is the primary sort key)
        self._row_starts = graph.indptr[:-1]
        self._row_lengths = graph.row_lengths
        self._n_vertices = graph.n_rows

    def propose(
        self,
        confirmed: np.ndarray,
        n: int,
        *,
        charges: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One proposition round; same contract as ``propose_edges``."""
        n_vertices = self._n_vertices
        if confirmed.shape != (n_vertices, n):
            raise ShapeError(f"confirmed must have shape {(n_vertices, n)}")
        rows, cols, vals = self._rows, self._cols, self._vals
        degree = (confirmed != NO_PARTNER).sum(axis=1).astype(INDEX_DTYPE)

        eligible = degree[cols] < n
        eligible &= cols != rows
        if charges is not None:
            eligible &= charges[rows] != charges[cols]
        eligible &= ~(confirmed[rows] == cols[:, None]).any(axis=1)

        capacity = n - degree
        # rank of each nonzero among its row's eligible entries, in the
        # pre-sorted (descending-value) order
        elig_int = eligible.astype(INDEX_DTYPE)
        cum = np.cumsum(elig_int)
        base = np.zeros(n_vertices, dtype=INDEX_DTYPE)
        non_empty = self._row_lengths > 0
        starts = self._row_starts[non_empty]
        base[non_empty] = cum[starts] - elig_int[starts]
        rank = cum - 1 - base[rows]
        selected = eligible & (rank < capacity[rows])

        prop_cols = np.full((n_vertices, n), NO_PARTNER, dtype=INDEX_DTYPE)
        prop_vals = np.zeros((n_vertices, n), dtype=VALUE_DTYPE)
        counts = np.zeros(n_vertices, dtype=INDEX_DTYPE)
        sel = np.flatnonzero(selected)
        prop_cols[rows[sel], rank[sel]] = cols[sel]
        prop_vals[rows[sel], rank[sel]] = vals[sel]
        np.add.at(counts, rows[sel], 1)
        return prop_cols, prop_vals, counts
