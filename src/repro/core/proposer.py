"""Convergence-aware edge proposition — the Algorithm 2 analogue of the
scan engine.

Two layers of amortization live here, both observationally pure:

* :class:`PreparedProposer` hoists the round-invariant ``(row, -value,
  position)`` sort out of Algorithm 2's iteration (profiling shows the
  global ``lexsort`` inside :func:`repro.sparse.topn.top_n_per_row`
  dominates a round); per round only the eligibility mask and a segmented
  cumulative count remain — but still over the *full* nonzero array.
* :class:`PropositionEngine` adds the frontier compaction that mirrors the
  convergence-aware :class:`~repro.core.scan.BidirectionalScan`: most
  eligibility conditions of Algorithm 2 are *monotone* — once they fail for
  an edge they fail forever — so the engine maintains the **active edge
  frontier** incrementally across rounds and recomputes only the one
  transient condition (charge parity) per round.

The frontier invariant (the deviation-from-paper argument, cf. DESIGN.md):
an edge ``(v, w)`` of the prepared graph leaves the frontier permanently as
soon as

* ``v`` is saturated (``|π'(v)| = n``) — degrees never decrease, so the
  edge can never be proposed by ``v`` again (capacity stays 0);
* ``w`` is saturated — ``w`` is never an eligible target again;
* the pair is already confirmed — confirmed partners are never dropped; or
* ``v == w`` — self loops are never eligible.

Only the charge test ``charge(v) != charge(w)`` changes from round to
round, so it is the only mask the per-round kernel computes.  Because every
removed edge is *ineligible* under Algorithm 2's full mask, the rank of the
surviving eligible entries inside their row segment is unchanged, and the
compacted proposal is bit-identical to
:func:`repro.core.factor.propose_edges` — the property-tested reference
(a paper-exact full-nnz round is preserved in
:mod:`repro.core.ablations` as the traffic baseline).

Compaction is gather-then-scatter on the pre-sorted arrays: the keep-mask
gathers the surviving ``(row, col, value)`` triples into fresh compact
buffers, preserving the sorted order (and therefore the Table 1
tie-breaking) exactly.

*When* that gather fires is a policy, not a rule: the engine consults a
:class:`~repro.core.frontier.CompactionPolicy` each round and may instead
carry the dead entries in place, masked out by a boolean *live mask*.
Because a dead entry is ineligible under Algorithm 2's full mask anyway,
masking instead of gathering leaves every per-row eligible rank unchanged —
the proposals stay bit-identical across policies; only the traffic moves
(dead lanes streamed per round vs. a one-off gather).
"""

from __future__ import annotations

import numpy as np

from .._validation import INDEX_DTYPE, VALUE_DTYPE
from ..device.device import KernelLaunch
from ..errors import FactorError, ShapeError
from ..sparse.csr import CSRMatrix
from ..sparse.topn import validate_proposition_weights
from .frontier import (
    CompactionDecision,
    CompactionPolicy,
    FrontierState,
    record_decision,
    resolve_compaction,
)
from .structures import NO_PARTNER

__all__ = ["PreparedProposer", "PropositionEngine"]

#: Bytes per frontier entry moved by a compaction gather: the
#: ``(row, col, value)`` triple (int64 + int64 + float64).
GATHER_ELEMENT_BYTES = 24
#: Bytes one retained dead entry costs each uncompacted round: its row and
#: col ids are streamed (and skipped) plus its live-mask byte.
DEAD_ELEMENT_BYTES = 17


def _segmented_rank(
    rows: np.ndarray,
    eligible: np.ndarray,
    row_starts: np.ndarray,
    row_counts: np.ndarray,
    n_vertices: int,
) -> np.ndarray:
    """Rank of each entry among its row's *eligible* entries, in array order.

    ``rows`` must be sorted; ``row_starts``/``row_counts`` describe its
    segments.  Ineligible entries receive meaningless (but harmless) ranks.
    """
    elig_int = eligible.astype(INDEX_DTYPE)
    cum = np.cumsum(elig_int)
    base = np.zeros(n_vertices, dtype=INDEX_DTYPE)
    non_empty = row_counts > 0
    starts = row_starts[non_empty]
    base[non_empty] = cum[starts] - elig_int[starts]
    return cum - 1 - base[rows]


def _scatter_proposals(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    selected: np.ndarray,
    rank: np.ndarray,
    n_vertices: int,
    n: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Write the selected entries into the ``(N, n)`` proposal slots."""
    prop_cols = np.full((n_vertices, n), NO_PARTNER, dtype=INDEX_DTYPE)
    prop_vals = np.zeros((n_vertices, n), dtype=VALUE_DTYPE)
    counts = np.zeros(n_vertices, dtype=INDEX_DTYPE)
    sel = np.flatnonzero(selected)
    prop_cols[rows[sel], rank[sel]] = cols[sel]
    prop_vals[rows[sel], rank[sel]] = vals[sel]
    np.add.at(counts, rows[sel], 1)
    return prop_cols, prop_vals, counts


class PreparedProposer:
    """Pre-sorted proposition kernel for repeated rounds on one graph.

    Stateless across rounds (the full nonzero array is re-masked every
    call); :class:`PropositionEngine` is the stateful frontier-compacted
    variant used by :func:`repro.core.factor.parallel_factor`.
    """

    def __init__(self, graph: CSRMatrix):
        validate_proposition_weights(graph.data)
        self.graph = graph
        rows = graph.nnz_rows
        nnz = graph.nnz
        position = np.arange(nnz, dtype=INDEX_DTYPE)
        order = np.lexsort((position, -graph.data, rows))
        self._rows = rows[order]
        self._cols = graph.indices[order]
        self._vals = np.asarray(graph.data, dtype=VALUE_DTYPE)[order]
        # segment extents are unchanged (row is the primary sort key)
        self._row_starts = graph.indptr[:-1]
        self._row_lengths = graph.row_lengths
        self._n_vertices = graph.n_rows

    def propose(
        self,
        confirmed: np.ndarray,
        n: int,
        *,
        charges: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One proposition round; same contract as ``propose_edges``."""
        n_vertices = self._n_vertices
        if confirmed.shape != (n_vertices, n):
            raise ShapeError(f"confirmed must have shape {(n_vertices, n)}")
        rows, cols, vals = self._rows, self._cols, self._vals
        degree = (confirmed != NO_PARTNER).sum(axis=1).astype(INDEX_DTYPE)

        eligible = degree[cols] < n
        eligible &= cols != rows
        if charges is not None:
            eligible &= charges[rows] != charges[cols]
        eligible &= ~(confirmed[rows] == cols[:, None]).any(axis=1)

        capacity = n - degree
        rank = _segmented_rank(
            rows, eligible, self._row_starts, self._row_lengths, n_vertices
        )
        selected = eligible & (rank < capacity[rows])
        return _scatter_proposals(
            rows, cols, vals, selected, rank, n_vertices, n
        )


class PropositionEngine:
    """Frontier-compacted proposition rounds for Algorithm 2.

    The engine owns compacted copies of the pre-sorted nonzero arrays (the
    *frontier*).  Per round:

    * :meth:`propose` evaluates only the charge mask over the frontier and
      selects the top-``capacity`` eligible entries per row — bit-identical
      to :func:`repro.core.factor.propose_edges` as long as the frontier is
      in sync with ``confirmed`` (see :meth:`compact`);
    * :meth:`compact` (called after the mutualize step) gathers the
      still-live edges into fresh compact buffers, permanently retiring
      edges with a saturated endpoint or a confirmed pair.

    The contract between the two: ``propose(confirmed, ...)`` requires that
    the last ``compact(confirmed)`` saw the same ``confirmed`` array —
    exactly the discipline of Algorithm 2's round loop, where the factor
    only changes in the mutualize step.  A fresh engine is in sync with any
    all-empty ``confirmed``.

    Whether :meth:`compact` *physically* gathers is delegated to a
    :class:`~repro.core.frontier.CompactionPolicy` (``compaction=``; the
    default honours ``REPRO_COMPACTION`` and falls back to eager, the
    historical compact-every-round).  Under a lazy policy dead entries stay
    in the buffers, masked by ``_live``; proposals are bit-identical either
    way because dead entries are ineligible under the full Algorithm 2 mask
    and eligibility ranks are per-row (see :mod:`repro.core.frontier`).

    ``frontier_size`` / ``total_edges`` expose the telemetry the factor
    loop threads into :meth:`repro.device.device.Device.launch`;
    ``frontier_size`` always counts *live* edges, so convergence curves and
    the factor loop's empty-frontier exit are policy-independent.
    """

    def __init__(
        self,
        graph: CSRMatrix,
        n: int,
        *,
        compaction: CompactionPolicy | str | None = None,
    ):
        if n < 1:
            raise ShapeError(f"n must be >= 1, got {n}")
        validate_proposition_weights(graph.data)
        self.graph = graph
        self.n = int(n)
        # the graph enables the "auto" spec to fingerprint-match the tuning cache
        self.policy = resolve_compaction(compaction, graph=graph)
        #: Per-round compaction decisions, in :meth:`compact` call order.
        self.decisions: list[CompactionDecision] = []
        #: Elements written by the physical compaction gathers so far
        #: (3 per surviving frontier entry: row, col, value).
        self.gathered_elements = 0
        self._n_vertices = graph.n_rows
        rows = graph.nnz_rows
        nnz = graph.nnz
        position = np.arange(nnz, dtype=INDEX_DTYPE)
        order = np.lexsort((position, -graph.data, rows))
        rows = rows[order]
        cols = graph.indices[order]
        vals = np.asarray(graph.data, dtype=VALUE_DTYPE)[order]
        # self loops are permanently ineligible: retire them up front
        live = cols != rows
        if not bool(live.all()):
            rows, cols, vals = rows[live], cols[live], vals[live]
        self._rows = rows
        self._cols = cols
        self._vals = vals
        # live mask over the buffers; None means "clean" (everything live)
        self._live: np.ndarray | None = None
        self._n_live = int(rows.size)
        self._recompute_segments()

    # -- state ---------------------------------------------------------------
    @property
    def frontier_size(self) -> int:
        """Number of directed edges still *live* (policy-independent)."""
        return self._n_live

    @property
    def buffer_size(self) -> int:
        """Physical length of the frontier buffers (live + carried dead)."""
        return int(self._rows.size)

    @property
    def is_dirty(self) -> bool:
        """True when the buffers carry dead entries awaiting compaction."""
        return self._live is not None

    @property
    def total_edges(self) -> int:
        """The frontier denominator: all nonzeros of the prepared graph."""
        return self.graph.nnz

    def _recompute_segments(self) -> None:
        counts = np.bincount(self._rows, minlength=self._n_vertices).astype(
            INDEX_DTYPE
        )
        starts = np.zeros(self._n_vertices, dtype=INDEX_DTYPE)
        if self._n_vertices > 1:
            np.cumsum(counts[:-1], out=starts[1:])
        self._row_starts = starts
        self._row_counts = counts

    # -- kernels -------------------------------------------------------------
    def propose(
        self,
        confirmed: np.ndarray,
        *,
        charges: np.ndarray | None = None,
        launch: KernelLaunch | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One frontier-compacted proposition round.

        Same output contract as :func:`repro.core.factor.propose_edges`.
        Only the charge mask is recomputed: the frontier invariant
        guarantees every remaining edge has two unsaturated endpoints and
        is not yet confirmed.
        """
        n = self.n
        n_vertices = self._n_vertices
        if confirmed.shape != (n_vertices, n):
            raise ShapeError(f"confirmed must have shape {(n_vertices, n)}")
        rows, cols, vals = self._rows, self._cols, self._vals
        degree = (confirmed != NO_PARTNER).sum(axis=1).astype(INDEX_DTYPE)
        capacity = n - degree

        # Under a deferred compaction the buffers carry dead entries; they
        # are masked ineligible here, which leaves the per-row ranks of the
        # live entries unchanged — bit-identical to the compacted round.
        if charges is None:
            eligible = (
                np.ones(rows.size, dtype=bool)
                if self._live is None
                else self._live.copy()
            )
        else:
            eligible = charges[rows] != charges[cols]
            if self._live is not None:
                eligible &= self._live

        rank = _segmented_rank(
            rows, eligible, self._row_starts, self._row_counts, n_vertices
        )
        selected = eligible & (rank < capacity[rows])
        prop_cols, prop_vals, counts = _scatter_proposals(
            rows, cols, vals, selected, rank, n_vertices, n
        )
        if launch is not None:
            # The pre-sorted frontier makes the selection purely rank-based:
            # the kernel never compares values, so the value array is *not*
            # streamed — only the selected weights are gathered.  Likewise
            # the frontier invariant reduces the per-vertex state to the
            # degree vector (no confirmed-pair lookups remain).  A dirty
            # buffer streams its dead rows/cols plus the live-mask byte per
            # entry — exactly the dead-lane traffic the adaptive policy
            # trades against the gather cost.
            launch.reads(rows, cols, degree, vals[: int(counts.sum())])
            if charges is not None:
                launch.reads(charges)
            if self._live is not None:
                launch.reads(self._live)
            launch.writes(prop_cols, prop_vals, counts)
            launch.telemetry(
                active_lanes=self.frontier_size, total_lanes=self.total_edges
            )
        return prop_cols, prop_vals, counts

    def compact(
        self,
        confirmed: np.ndarray,
        *,
        launch: KernelLaunch | None = None,
        rounds_remaining: int = 1,
    ) -> int:
        """Retire permanently ineligible edges; returns the number that died.

        Must be called whenever ``confirmed`` gained entries (after the
        mutualize step).  Monotone: the live frontier never grows.  The
        compaction policy decides whether the dead entries are *physically*
        gathered out now or carried in place under the live mask;
        ``rounds_remaining`` bounds the policy's dead-lane projection.
        """
        n = self.n
        if confirmed.shape != (self._n_vertices, n):
            raise ShapeError(f"confirmed must have shape {(self._n_vertices, n)}")
        rows, cols = self._rows, self._cols
        if rows.size == 0:
            return 0
        degree = (confirmed != NO_PARTNER).sum(axis=1).astype(INDEX_DTYPE)
        keep = (degree[rows] < n) & (degree[cols] < n)
        keep &= ~(confirmed[rows] == cols[:, None]).any(axis=1)
        # the retirement conditions are monotone, so the fresh keep mask
        # subsumes the previous live mask — intersecting is belt-and-braces
        live = keep if self._live is None else (keep & self._live)
        n_live = int(live.sum())
        newly_dead = self._n_live - n_live
        dead = int(rows.size) - n_live
        if dead == 0:
            return 0
        decision = self.policy.decide(
            FrontierState(
                live=n_live,
                dead=dead,
                gather_element_bytes=GATHER_ELEMENT_BYTES,
                dead_element_bytes=DEAD_ELEMENT_BYTES,
                rounds_remaining=rounds_remaining,
            )
        )
        self.decisions.append(decision)
        record_decision(decision, engine="proposition", launch=launch)
        self._n_live = n_live
        if decision.compact:
            if launch is not None:
                # the gather reads the old frontier triple (the keep mask is
                # computed in-kernel), the scatter writes the compacted one
                launch.reads(rows, cols, self._vals, confirmed)
            self._rows = rows[live]
            self._cols = cols[live]
            self._vals = self._vals[live]
            self._live = None
            self.gathered_elements += 3 * n_live
            self._recompute_segments()
            if launch is not None:
                launch.writes(self._rows, self._cols, self._vals)
        else:
            self._live = live
            if launch is not None:
                # no gather: the kernel only refreshes the live mask
                launch.reads(rows, cols, confirmed)
                launch.writes(live)
        return newly_dead
