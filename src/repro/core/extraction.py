"""Coefficient extraction (Section 3.3 step 4 / Section 4.3).

With the permutation fixed, the tridiagonal system is filled from the
*original* input matrix A: the matrix is walked in COO form, one simulated
thread per coefficient; each thread checks whether its edge is part of the
linear forest and scatters the value through the permutation into one of the
three band buffers of length N.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import VALUE_DTYPE, as_value_array, check_square
from ..device.device import Device, default_device
from ..errors import ShapeError
from ..obs import trace_span
from ..sparse.csr import CSRMatrix
from .permutation import inverse_permutation
from .structures import Factor

__all__ = ["TridiagonalSystem", "extract_tridiagonal"]


@dataclass(frozen=True)
class TridiagonalSystem:
    """A tridiagonal matrix stored as three band buffers of length N.

    ``dl[i]`` couples row ``i`` with ``i-1`` (``dl[0]`` unused), ``d[i]`` is
    the diagonal, ``du[i]`` couples row ``i`` with ``i+1`` (``du[N-1]``
    unused).
    """

    dl: np.ndarray
    d: np.ndarray
    du: np.ndarray

    def __post_init__(self) -> None:
        # float32 is preserved the same way CSRMatrix does it: only when
        # every band comes in as float32 does the system stay single
        # precision; any other dtype mix coerces to VALUE_DTYPE.
        all_f32 = all(
            np.asarray(b).dtype == np.float32 for b in (self.dl, self.d, self.du)
        )
        value_dtype = np.float32 if all_f32 else VALUE_DTYPE
        dl = np.ascontiguousarray(self.dl, dtype=value_dtype)
        d = np.ascontiguousarray(self.d, dtype=value_dtype)
        du = np.ascontiguousarray(self.du, dtype=value_dtype)
        if not (dl.shape == d.shape == du.shape) or d.ndim != 1:
            raise ShapeError("dl, d, du must be equal-length 1-D arrays")
        object.__setattr__(self, "dl", dl)
        object.__setattr__(self, "d", d)
        object.__setattr__(self, "du", du)

    @property
    def value_dtype(self) -> np.dtype:
        """The band precision (float32 or float64)."""
        return self.d.dtype

    @property
    def n(self) -> int:
        return int(self.d.size)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = as_value_array(x, name="x")
        if x.shape != (self.n,):
            raise ShapeError(f"x must have shape ({self.n},)")
        y = self.d * x
        y[1:] += self.dl[1:] * x[:-1]
        y[:-1] += self.du[:-1] * x[1:]
        return y

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Direct solve via vectorized cyclic reduction."""
        from ..solvers.tridiag import pcr_solve

        return pcr_solve(self.dl, self.d, self.du, b)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.n, self.n), dtype=self.d.dtype)
        idx = np.arange(self.n)
        dense[idx, idx] = self.d
        dense[idx[1:], idx[1:] - 1] = self.dl[1:]
        dense[idx[:-1], idx[:-1] + 1] = self.du[:-1]
        return dense


def extract_tridiagonal(
    a: CSRMatrix,
    forest: Factor,
    perm: np.ndarray,
    *,
    device: Device | None = None,
) -> TridiagonalSystem:
    """Scatter the linear-forest coefficients of ``A`` into band storage.

    Only coefficients whose edge is a confirmed linear-forest edge (plus the
    main diagonal of ``A``) enter the system — an incidental coupling between
    the last vertex of one path and the first of the next is *not* included,
    exactly as in the paper's implementation.
    """
    n = check_square(a.shape)
    device = device or default_device()
    new_index = inverse_permutation(perm)
    # the bands inherit the input precision: a float32 matrix yields a
    # float32 system (the paper's single-precision benchmark path)
    band_dtype = a.data.dtype
    dl = np.zeros(n, dtype=band_dtype)
    du = np.zeros(n, dtype=band_dtype)
    coo = a.to_coo()
    with trace_span(
        "extract-tridiagonal",
        category="stage",
        n=n,
        nnz=a.nnz,
        dtype=str(band_dtype),
    ), device.launch(
        "extract-coefficients", reads=(coo.row, coo.col, coo.val), writes=(dl, du)
    ):
        d = np.zeros(n, dtype=band_dtype)
        on_diag = coo.row == coo.col
        d[new_index[coo.row[on_diag]]] = coo.val[on_diag]
        off = ~on_diag
        rows = coo.row[off]
        cols = coo.col[off]
        vals = coo.val[off]
        in_forest = forest.contains_edges(rows, cols)
        rows = rows[in_forest]
        cols = cols[in_forest]
        vals = vals[in_forest]
        p_row = new_index[rows]
        p_col = new_index[cols]
        sub = p_col == p_row - 1
        sup = p_col == p_row + 1
        dl[p_row[sub]] = vals[sub]
        du[p_row[sup]] = vals[sup]
    return TridiagonalSystem(dl=dl, d=d, du=du)
