"""Persistence for factors and linear-forest results (NumPy ``.npz``).

Extracting a linear forest is the expensive setup step; downstream users
(e.g. a solver service reusing one preconditioner across many right-hand
sides) want to compute it once and reload it.  The format is a plain ``npz``
archive with a format tag, so files are portable and inspectable.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from .extraction import TridiagonalSystem
from .paths import PathInfo
from .structures import Factor

__all__ = [
    "load_factor",
    "load_forest_ordering",
    "save_factor",
    "save_forest_ordering",
]

_FACTOR_TAG = "repro-factor-v1"
_ORDERING_TAG = "repro-forest-ordering-v1"


def save_factor(path, factor: Factor) -> None:
    """Write a [0,n]-factor to ``path`` (.npz)."""
    np.savez_compressed(
        path, format=np.array(_FACTOR_TAG), neighbors=factor.neighbors
    )


def load_factor(path) -> Factor:
    """Read a factor written by :func:`save_factor`."""
    with np.load(path, allow_pickle=False) as data:
        tag = str(data.get("format", ""))
        if tag != _FACTOR_TAG:
            raise FormatError(f"{path}: not a repro factor file (tag={tag!r})")
        return Factor(data["neighbors"])


def save_forest_ordering(
    path,
    *,
    forest: Factor,
    paths: PathInfo,
    perm: np.ndarray,
    tridiagonal: TridiagonalSystem | None = None,
) -> None:
    """Persist everything needed to reuse an extracted ordering."""
    payload = {
        "format": np.array(_ORDERING_TAG),
        "neighbors": forest.neighbors,
        "path_id": paths.path_id,
        "position": paths.position,
        "perm": np.asarray(perm),
    }
    if tridiagonal is not None:
        payload["dl"] = tridiagonal.dl
        payload["d"] = tridiagonal.d
        payload["du"] = tridiagonal.du
    np.savez_compressed(path, **payload)


def load_forest_ordering(path):
    """Read an ordering written by :func:`save_forest_ordering`.

    Returns ``(forest, paths, perm, tridiagonal_or_None)``.
    """
    with np.load(path, allow_pickle=False) as data:
        tag = str(data.get("format", ""))
        if tag != _ORDERING_TAG:
            raise FormatError(f"{path}: not a repro ordering file (tag={tag!r})")
        forest = Factor(data["neighbors"])
        paths = PathInfo(path_id=data["path_id"], position=data["position"])
        perm = data["perm"]
        tri = None
        if "d" in data:
            tri = TridiagonalSystem(dl=data["dl"], d=data["d"], du=data["du"])
        return forest, paths, perm, tri
