"""The tridiagonalising permutation (Section 3.3 step 3 / Section 4.3).

Vertex ids are sorted by the composite key (path id, position) — the paper
uses CUB's radix sort; we use the split radix sort of :mod:`repro.sort`.
Under the resulting permutation, consecutive rows are consecutive vertices of
a path, so every linear-forest edge lands on the sub/superdiagonal of
``Q^T A Q``.
"""

from __future__ import annotations

import numpy as np

from .._validation import INDEX_DTYPE
from ..sort.keys import pack_keys
from ..sort.radix import radix_argsort
from .paths import PathInfo
from .structures import Factor

__all__ = ["forest_permutation", "inverse_permutation", "is_tridiagonal_under"]


def forest_permutation(info: PathInfo) -> np.ndarray:
    """Vertex ids sorted by (path id, position).

    Returns ``perm`` with ``perm[k]`` = the old id of the vertex at new
    position ``k``.
    """
    keys = pack_keys(info.path_id, info.position)
    return radix_argsort(keys)


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """``new_index`` with ``new_index[old] = new``."""
    perm = np.asarray(perm, dtype=INDEX_DTYPE)
    new_index = np.empty_like(perm)
    new_index[perm] = np.arange(perm.size, dtype=INDEX_DTYPE)
    return new_index


def is_tridiagonal_under(factor: Factor, perm: np.ndarray) -> bool:
    """Does every factor edge land on the sub/superdiagonal under ``perm``?"""
    new_index = inverse_permutation(perm)
    u, v = factor.edges()
    if u.size == 0:
        return True
    return bool((np.abs(new_index[u] - new_index[v]) == 1).all())
