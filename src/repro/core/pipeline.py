"""End-to-end linear-forest extraction with the Figure 6 timing breakdown.

The four steps of Section 3.3 — [0,2]-factor, cycle breaking, path
identification, permutation + coefficient extraction — orchestrated into one
call.  Phase wall-clock times are recorded under the same labels as the
paper's Figure 6 time breakdown ("[0,2]-factor computation", "bidirectional
scans", "coefficient extraction").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.device import Device, default_device
from ..device.profiler import TimingBreakdown
from ..obs import trace_span
from ..sparse.build import prepare_graph
from ..sparse.csr import CSRMatrix
from .coverage import coverage as coverage_of
from .cycles import BrokenCycles, break_cycles
from .extraction import TridiagonalSystem, extract_tridiagonal
from .factor import ParallelFactorConfig, ParallelFactorResult, parallel_factor
from .paths import PathInfo, identify_paths, paths_from_scan
from .permutation import forest_permutation
from .scan import AddOperator, BidirectionalScan, FusedOperator, MinEdgeOperator
from .structures import Factor

__all__ = ["LinearForestResult", "extract_linear_forest"]

PHASE_FACTOR = "[0,2]-factor"
PHASE_SCANS = "bidirectional scans"
PHASE_EXTRACT = "coefficient extraction"


@dataclass(frozen=True)
class LinearForestResult:
    """Everything the pipeline produces.

    Attributes
    ----------
    graph:
        The prepared adjacency ``A'`` (or ``A' + A'^T``).
    factor_result:
        The raw parallel [0,2]-factor outcome (may contain cycles).
    broken:
        Cycle-breaking outcome; ``broken.forest`` is the linear forest.
    paths:
        Per-vertex path id and position.
    perm:
        ``perm[k]`` = old id of the vertex at new position ``k``.
    tridiagonal:
        The extracted tridiagonal system in the permuted space.
    coverage:
        c_π of the linear forest with respect to the original matrix.
    timings:
        Wall-clock breakdown over the three Figure 6 phases.
    """

    graph: CSRMatrix
    factor_result: ParallelFactorResult
    broken: BrokenCycles
    paths: PathInfo
    perm: np.ndarray
    tridiagonal: TridiagonalSystem
    coverage: float
    timings: TimingBreakdown

    @property
    def forest(self) -> Factor:
        return self.broken.forest

    @property
    def frontier_history(self) -> list[int]:
        """Active-edge frontier per factor round (proposition convergence)."""
        return self.factor_result.frontier_history


def extract_linear_forest(
    a: CSRMatrix,
    config: ParallelFactorConfig | None = None,
    *,
    device: Device | None = None,
    devices: int | None = None,
    merged_scan: bool = True,
    compaction=None,
    prepared_graph: CSRMatrix | None = None,
    charge_ids: np.ndarray | None = None,
) -> LinearForestResult:
    """Run the complete pipeline of the paper on an input matrix ``A``.

    ``config.n`` must be 2 (linear forests come from [0,2]-factors); the
    remaining parameters default to the paper's default configuration
    (M = 5, m = 5, k_m = 0, p = 0.5).

    ``devices`` (or a :class:`~repro.device.device.DeviceGroup` passed as
    ``device``) routes the run through the sharded engine
    (:mod:`repro.core.sharded`) — N simulated GPUs over a uniform 1-D vertex
    partition with halo exchange on the group's interconnect.  When neither
    is given, ``REPRO_DEVICES`` selects the ambient device count; an
    explicit single :class:`~repro.device.device.Device` always pins the
    classic single-device path.  Results are bit-identical for every device
    count (see ``docs/SHARDING.md``).

    With ``merged_scan`` (the default) the cycle scan carries the position
    accumulator as a fused payload.  When the factor turns out acyclic — the
    common case on well-charged factors — the path identification comes for
    free from that single butterfly pass; with cycles present, the position
    scan re-runs on the broken forest exactly as in the paper.  Results are
    bit-identical either way; only launch counts and bytes moved differ.

    ``compaction`` selects the frontier-compaction policy of *both* engines
    (proposition rounds and bidirectional scans) — a policy instance, a spec
    string (``"eager"``, ``"never"``, ``"lazy[:threshold]"``, ``"adaptive"``,
    ``"auto"``), or ``None`` to honour ``REPRO_COMPACTION`` (default eager).
    ``"auto"`` fingerprints the prepared graph against the
    :mod:`repro.tune` cache and falls back to adaptive on any miss.  Results
    are bit-identical under every policy (see :mod:`repro.core.frontier`).

    ``prepared_graph`` skips the internal :func:`prepare_graph` call and uses
    the given adjacency directly; it must be the prepared form of ``a``
    (symmetric, absolute off-diagonal values, empty diagonal).  The batch
    engine prepares each member *before* packing — preparation is the one
    step that is not member-local on a packed graph (symmetry is a global
    property) — and passes the packed prepared graph here.  ``charge_ids``
    overrides the vertex identities hashed by the charge kernel (see
    :func:`repro.core.charge.vertex_charges`).
    """
    from ..device.device import DeviceGroup
    from .frontier import resolve_compaction

    if isinstance(device, DeviceGroup):
        from .sharded import extract_linear_forest_sharded

        return extract_linear_forest_sharded(
            a, config, group=device, devices=devices, merged_scan=merged_scan,
            compaction=compaction, prepared_graph=prepared_graph,
            charge_ids=charge_ids,
        )
    if devices is not None or device is None:
        # an explicit single Device pins the classic path even when
        # REPRO_DEVICES is set; otherwise the env var is the ambient default
        from .sharded import resolve_devices

        devices = resolve_devices(devices)
    if devices is not None:
        if device is not None:
            from ..errors import ConfigError

            raise ConfigError(
                "pass a DeviceGroup (or no device) together with devices=; "
                "a single Device cannot host a sharded run"
            )
        from .sharded import extract_linear_forest_sharded

        return extract_linear_forest_sharded(
            a, config, devices=devices, merged_scan=merged_scan,
            compaction=compaction, prepared_graph=prepared_graph,
            charge_ids=charge_ids,
        )

    config = config or ParallelFactorConfig(n=2)
    if config.n != 2:
        raise ValueError(f"linear-forest extraction requires n=2, got n={config.n}")
    device = device or default_device()
    timings = TimingBreakdown()

    with trace_span(
        "extract-linear-forest",
        category="run",
        n_vertices=a.n_rows,
        nnz=a.nnz,
        merged_scan=merged_scan,
        dtype=str(a.data.dtype),
    ) as root:
        with timings.phase(PHASE_FACTOR):
            graph = prepared_graph if prepared_graph is not None else prepare_graph(a)
            # resolve once the prepared graph exists: the "auto" spec
            # fingerprints it against the tuning cache, and every engine
            # below then shares the one concrete policy instance
            policy = resolve_compaction(compaction, graph=graph)
            if root is not None:
                root.attributes["compaction"] = policy.name
            factor_result = parallel_factor(
                graph, config, device=device, compaction=policy,
                charge_ids=charge_ids,
            )

        with timings.phase(PHASE_SCANS):
            if merged_scan:
                scan = BidirectionalScan(
                    factor_result.factor, device=device, compaction=policy
                )
                fused = scan.run(FusedOperator((MinEdgeOperator(), AddOperator())), graph)
                broken = break_cycles(factor_result.factor, scan_result=fused)
                if broken.n_cycles == 0:
                    # forest == factor: the fused pass already holds the positions
                    paths = paths_from_scan(fused)
                else:
                    paths = identify_paths(
                        broken.forest, device=device, compaction=policy
                    )
            else:
                broken = break_cycles(
                    factor_result.factor, graph, device=device, compaction=policy
                )
                paths = identify_paths(broken.forest, device=device, compaction=policy)
            perm = forest_permutation(paths)

        with timings.phase(PHASE_EXTRACT):
            tridiagonal = extract_tridiagonal(a, broken.forest, perm, device=device)

        cov = coverage_of(a, broken.forest)
        if root is not None:
            root.attributes.update(
                coverage=cov,
                n_cycles=broken.n_cycles,
                n_paths=paths.n_paths,
                factor_iterations=factor_result.iterations,
            )

    return LinearForestResult(
        graph=graph,
        factor_result=factor_result,
        broken=broken,
        paths=paths,
        perm=perm,
        tridiagonal=tridiagonal,
        coverage=cov,
        timings=timings,
    )
