"""The bidirectional scan — Algorithm 3 / Section 4.2 of the paper.

A [0,2]-factor is structured like a doubly-linked list *with unknown
orientation*: every vertex knows its (at most two) neighbours but not which
one is "forward".  Classical parallel scans (Thrust, CUB, parallel STL)
require random-access iterators and cannot run on such a structure.  The
bidirectional scan runs two pointer-jumping scans in both directions
simultaneously with a butterfly access pattern (Figure 2): each vertex keeps a
stride-q neighbour per direction and, per step, absorbs the payload of the
segment behind that neighbour, doubling q.  ``log₂(N)`` kernel launches
suffice even if all vertices lie on one path.

Encoding (Section 4.2): a lane that has reached a path end stores the
*negative 1-based id* of the end vertex, ``-(end + 1)``; a lane that is still
positive after the final step proves its vertex lies on a cycle.

Convergence awareness (deviation from the paper — the paper always runs the
full ⌈log₂N⌉ launches):

* **Early exit** — the paper itself notes the butterfly needs ⌈log₂N⌉ steps
  only if all vertices lie on one path.  On real factors most paths are
  short, so the engine stops launching as soon as every lane holds a
  path-end marker (``(q < 0).all()``); :attr:`ScanResult.launches` reports
  the launches actually executed against the nominal :attr:`ScanResult.steps`.
  Cycle lanes never clamp, so factors with cycles still run all steps and
  the cycle-detection semantics of the paper are untouched.
* **Frontier compaction** — clamped lanes are dead weight: their tuples
  never change again.  Instead of copying every ping-pong buffer in full
  each step, the engine keeps one live buffer per array, gathers the far
  tuples of the *active* (vertex, lane) pairs into compacted snapshots, and
  scatters only the merged results back.  The gathered snapshot plays the
  role of the paper's input ("back") buffer: all reads of a step complete
  before any write, so the race the ping-pong buffers guard against cannot
  occur, while global-memory traffic shrinks with the frontier.  *When* the
  per-lane candidate lists are re-gathered is a pluggable
  :class:`~repro.core.frontier.CompactionPolicy` (``compaction=``): a lazy
  policy carries clamped candidates a few extra steps (each costs only its
  id and marker read before the in-kernel skip) instead of re-gathering the
  list every step.  Results are bit-identical either way — dead candidates
  are filtered out before the far-tuple gathers, so the launch computes on
  exactly the active set regardless of policy.
* **Telemetry** — every launch reports its frontier size to the
  :class:`~repro.device.device.Device` (``active_lanes``/``total_lanes``),
  so ``render_trace`` shows the convergence curve of a run.

Results are bit-identical to the exhaustive engine (kept as
:class:`~repro.core.ablations.ReferenceScan`): extra launches past
convergence are no-ops, and the gather/scatter step performs exactly the
reads and writes of Algorithm 3 lines 15–20 in the same order.

The payload and its ⊕ are pluggable (the scan is "parameterized on the
operation" like ``thrust::inclusive_scan``): :class:`AddOperator` computes
path positions (step 2 of Section 3.3), :class:`MinEdgeOperator` finds the
weakest edge of each cycle (step 1), and :class:`FusedOperator` runs several
payloads through one butterfly pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, Sequence

import numpy as np

from .._validation import INDEX_DTYPE, VALUE_DTYPE
from ..device.device import Device, default_device
from ..errors import ScanError
from ..obs import trace_span
from ..sparse.csr import CSRMatrix
from .frontier import (
    CompactionDecision,
    CompactionPolicy,
    FrontierState,
    record_decision,
    resolve_compaction,
    wants_auto,
)
from .structures import NO_PARTNER, Factor

__all__ = [
    "AddOperator",
    "BidirectionalScan",
    "FusedOperator",
    "MaxVertexOperator",
    "MinEdgeOperator",
    "NullOperator",
    "ScanResult",
    "WeightedAddOperator",
    "decode_end",
    "is_path_end",
    "operator_label",
    "scan_steps",
]

Payload = dict[str, np.ndarray]

#: Bytes per candidate-list entry moved by a list re-gather (one int64 id).
CAND_GATHER_BYTES = 8
#: Bytes one retained dead candidate costs per step: its id and its clamped
#: ``q`` marker are streamed before the in-kernel skip (two int64 words).
CAND_DEAD_BYTES = 16


def is_path_end(q: np.ndarray) -> np.ndarray:
    """A lane value marks a path end iff it is negative."""
    return q < 0


def decode_end(q: np.ndarray) -> np.ndarray:
    """Recover the end-vertex id from a path-end marker ``-(end + 1)``."""
    return -q - 1


def scan_steps(n_vertices: int) -> int:
    """Number of kernel launches: ⌈log₂(N)⌉ (Section 4.2)."""
    if n_vertices <= 1:
        return 0
    return int(np.ceil(np.log2(n_vertices)))


class ScanOperator(Protocol):
    """The pluggable ⊕ of the bidirectional scan.

    ``init`` produces the per-lane payload arrays of shape ``(N, 2)``;
    ``combine`` merges the far segment's payload into the current one (both
    arguments are flat selections of lane entries) and must be vectorized and
    side-effect free.
    """

    def init(self, factor: Factor, graph: CSRMatrix | None) -> Payload: ...

    def combine(self, current: Payload, far: Payload) -> Payload: ...


def operator_label(operator: ScanOperator) -> str:
    """Short kernel-name tag for an operator (e.g. ``min-edge``).

    Operators may define a ``label`` attribute; the fallback derives a
    kebab-case slug from the class name (``MinEdgeOperator`` → ``min-edge``).
    """
    label = getattr(operator, "label", None)
    if label:
        return str(label)
    name = type(operator).__name__
    if name.endswith("Operator"):
        name = name[: -len("Operator")]
    out = []
    for i, ch in enumerate(name):
        if ch.isupper() and i > 0:
            out.append("-")
        out.append(ch.lower())
    return "".join(out) or "op"


class NullOperator:
    """No payload — used when only connectivity (cycle detection) matters."""

    label = "null"

    def init(self, factor: Factor, graph: CSRMatrix | None) -> Payload:
        return {}

    def combine(self, current: Payload, far: Payload) -> Payload:
        return {}


class AddOperator:
    """Path-position payload: each lane starts at 1 and sums over the path.

    After the scan, the lane pointing at end ``e`` holds
    ``dist(v, e) + 1`` — the 1-based position of ``v`` counted from ``e``
    (Algorithm 3 lines 2 and 17).
    """

    label = "add"

    def init(self, factor: Factor, graph: CSRMatrix | None) -> Payload:
        return {"r": np.ones((factor.n_vertices, 2), dtype=INDEX_DTYPE)}

    def combine(self, current: Payload, far: Payload) -> Payload:
        return {"r": current["r"] + far["r"]}


class WeightedAddOperator:
    """Weighted path positions: each lane accumulates the |weight| of the
    traversed edges instead of a unit step.

    Demonstrates the Thrust-style operator parameterization of the scan: the
    same butterfly computes, per vertex and direction, the total edge weight
    between the vertex and the path end.  (The lane pointing at end ``e``
    finally holds ``weight(v .. e) + 1`` — the ``+1`` mirrors the unit
    initialisation of Algorithm 3 so that path ends report 1.)
    """

    label = "weighted-add"

    def init(self, factor: Factor, graph: CSRMatrix | None) -> Payload:
        if graph is None:
            raise ScanError("WeightedAddOperator requires the weighted graph")
        n_vertices = factor.n_vertices
        ids = np.arange(n_vertices, dtype=INDEX_DTYPE)
        r = np.ones((n_vertices, 2), dtype=VALUE_DTYPE)
        for lane in (0, 1):
            if lane < factor.n:
                nbr = factor.neighbors[:, lane]
            else:
                nbr = np.full(n_vertices, NO_PARTNER, dtype=INDEX_DTYPE)
            valid = nbr != NO_PARTNER
            r[valid, lane] = np.abs(graph.gather(ids[valid], nbr[valid]))
        return {"r": r}

    def combine(self, current: Payload, far: Payload) -> Payload:
        return {"r": current["r"] + far["r"]}


class MaxVertexOperator:
    """Broadcast the maximum vertex id of the component to every member.

    The paper notes the scan can "find and broadcast a specific value" —
    this is that use: an idempotent maximum, valid on paths *and* cycles.
    """

    label = "max-vertex"

    def init(self, factor: Factor, graph: CSRMatrix | None) -> Payload:
        n_vertices = factor.n_vertices
        ids = np.arange(n_vertices, dtype=INDEX_DTYPE)
        m = np.empty((n_vertices, 2), dtype=INDEX_DTYPE)
        for lane in (0, 1):
            if lane < factor.n:
                nbr = factor.neighbors[:, lane]
            else:
                nbr = np.full(n_vertices, NO_PARTNER, dtype=INDEX_DTYPE)
            m[:, lane] = np.where(nbr == NO_PARTNER, ids, np.maximum(ids, nbr))
        return {"m": m}

    def combine(self, current: Payload, far: Payload) -> Payload:
        return {"m": np.maximum(current["m"], far["m"])}


class MinEdgeOperator:
    """Weakest-edge payload for cycle breaking (Section 3.3 step 1).

    Each lane starts with the incident factor edge in its direction,
    identified by the triple (|weight|, min endpoint, max endpoint) — *"the
    weakest edge is uniquely identified by the weight and the IDs of the
    incident vertices"*.  ⊕ is the lexicographic minimum, which is
    idempotent, so the overlapping segment coverage that pointer jumping
    produces on cycles is harmless.
    """

    label = "min-edge"

    _INF = np.iinfo(INDEX_DTYPE).max

    def init(self, factor: Factor, graph: CSRMatrix | None) -> Payload:
        if graph is None:
            raise ScanError("MinEdgeOperator requires the weighted graph")
        n_vertices = factor.n_vertices
        ids = np.arange(n_vertices, dtype=INDEX_DTYPE)
        w = np.full((n_vertices, 2), np.inf, dtype=VALUE_DTYPE)
        u = np.full((n_vertices, 2), self._INF, dtype=INDEX_DTYPE)
        v = np.full((n_vertices, 2), self._INF, dtype=INDEX_DTYPE)
        for lane in (0, 1):
            if lane < factor.n:
                nbr = factor.neighbors[:, lane]
            else:
                nbr = np.full(n_vertices, NO_PARTNER, dtype=INDEX_DTYPE)
            valid = nbr != NO_PARTNER
            vv = ids[valid]
            nn = nbr[valid]
            w[valid, lane] = np.abs(graph.gather(vv, nn))
            u[valid, lane] = np.minimum(vv, nn)
            v[valid, lane] = np.maximum(vv, nn)
        return {"w": w, "u": u, "v": v}

    def combine(self, current: Payload, far: Payload) -> Payload:
        take_far = far["w"] < current["w"]
        tie_w = far["w"] == current["w"]
        take_far |= tie_w & (far["u"] < current["u"])
        take_far |= tie_w & (far["u"] == current["u"]) & (far["v"] < current["v"])
        return {
            "w": np.where(take_far, far["w"], current["w"]),
            "u": np.where(take_far, far["u"], current["u"]),
            "v": np.where(take_far, far["v"], current["v"]),
        }


class FusedOperator:
    """Run several operators' payloads through one butterfly pass.

    ``FusedOperator((MinEdgeOperator(), AddOperator()))`` carries both the
    weakest-edge triple and the position accumulator per lane, halving the
    number of scans when a caller needs both results of the *same* factor.
    The stride-q pointers are shared; each constituent's ``combine`` sees
    exactly the selections it would see in a solo run, so every fused payload
    is bit-identical to its separate-scan counterpart.

    Payload names must be disjoint across the constituents; pass ``prefixes``
    to namespace them when they collide (e.g. two :class:`AddOperator`\\ s).
    """

    def __init__(
        self,
        operators: Sequence[ScanOperator],
        prefixes: Sequence[str] | None = None,
    ):
        operators = tuple(operators)
        if not operators:
            raise ScanError("FusedOperator requires at least one operator")
        if prefixes is None:
            prefixes = ("",) * len(operators)
        else:
            prefixes = tuple(prefixes)
            if len(prefixes) != len(operators):
                raise ScanError(
                    f"got {len(prefixes)} prefixes for {len(operators)} operators"
                )
        self.operators = operators
        self.prefixes = prefixes
        # per operator: the payload base names, filled in by init()
        self._fields: list[tuple[str, ...]] = []

    @property
    def label(self) -> str:
        return "fused(" + "+".join(operator_label(op) for op in self.operators) + ")"

    def init(self, factor: Factor, graph: CSRMatrix | None) -> Payload:
        out: Payload = {}
        self._fields = []
        for op, prefix in zip(self.operators, self.prefixes):
            payload = op.init(factor, graph)
            self._fields.append(tuple(payload))
            for base, arr in payload.items():
                name = prefix + base
                if name in out:
                    raise ScanError(
                        f"fused payload name collision on {name!r}; "
                        "disambiguate with prefixes"
                    )
                out[name] = arr
        return out

    def combine(self, current: Payload, far: Payload) -> Payload:
        out: Payload = {}
        for op, prefix, names in zip(self.operators, self.prefixes, self._fields):
            if not names:
                continue
            merged = op.combine(
                {base: current[prefix + base] for base in names},
                {base: far[prefix + base] for base in names},
            )
            for base in names:
                out[prefix + base] = merged[base]
        return out


@dataclass(frozen=True)
class ScanResult:
    """Final lane state of a bidirectional scan.

    ``steps`` is the nominal (clamped) step count of the run; ``launches``
    counts the kernel launches actually executed — smaller when the scan
    converged early.  ``active_per_launch`` holds the frontier size (number
    of unconverged lanes) at each executed launch.
    ``compaction_decisions`` are the per-step candidate-list verdicts of the
    engine's compaction policy (empty for engines without one, e.g. the
    reference ablations, and on steps where no candidate had died).
    """

    q: np.ndarray  # (N, 2) — markers -(end+1), or positive ids on cycles
    payload: Mapping[str, np.ndarray]  # each (N, 2)
    steps: int
    launches: int
    active_per_launch: tuple[int, ...] = field(default=())
    compaction_decisions: tuple[CompactionDecision, ...] = field(default=())

    @property
    def cycle_mask(self) -> np.ndarray:
        """Vertices whose lanes never reached a path end lie on a cycle."""
        return (self.q >= 0).any(axis=1)

    @property
    def converged(self) -> bool:
        """True iff every lane clamped to a path-end marker."""
        return bool((self.q < 0).all())


class BidirectionalScan:
    """Runs Algorithm 3's butterfly pointer jumping on a [0,≤2]-factor.

    This is the convergence-aware engine (early exit + frontier compaction,
    see the module docstring); the paper's exhaustive formulation survives as
    :class:`~repro.core.ablations.ReferenceScan` and the two are
    property-tested to produce bit-identical results.
    """

    def __init__(
        self,
        factor: Factor,
        *,
        device: Device | None = None,
        compaction: CompactionPolicy | str | None = None,
    ):
        if factor.n > 2:
            raise ScanError(
                f"the bidirectional scan requires a [0,2]-factor, got n={factor.n}"
            )
        self.factor = factor
        self.device = device or default_device()
        self._compaction = compaction
        # "auto" fingerprints the graph, which only run() receives — defer it
        self.policy = None if wants_auto(compaction) else resolve_compaction(compaction)
        n_vertices = factor.n_vertices
        ids = np.arange(n_vertices, dtype=INDEX_DTYPE)
        q0 = np.full((n_vertices, 2), 0, dtype=INDEX_DTYPE)
        for lane in (0, 1):
            if lane < factor.n:
                nbr = factor.neighbors[:, lane]
            else:
                nbr = np.full(n_vertices, NO_PARTNER, dtype=INDEX_DTYPE)
            # missing neighbours mark this very vertex as the path end
            q0[:, lane] = np.where(nbr == NO_PARTNER, -(ids + 1), nbr)
        self._q0 = q0
        self._ids = ids

    def run(
        self,
        operator: ScanOperator,
        graph: CSRMatrix | None = None,
        *,
        steps: int | None = None,
    ) -> ScanResult:
        """Execute the scan with the given ⊕ operator.

        ``steps`` defaults to ⌈log₂(N)⌉ — enough for a single path spanning
        all vertices; pass a smaller value only for illustration (e.g. the
        Figure 2 trace).  Values above ⌈log₂(N)⌉ are clamped: the extra
        launches could only ever be no-ops.  The scan additionally stops as
        soon as every lane has clamped to a path-end marker, so
        ``result.launches ≤ result.steps``.
        """
        if self.policy is None:
            self.policy = resolve_compaction(self._compaction, graph=graph)
        n_vertices = self.factor.n_vertices
        nominal = scan_steps(n_vertices)
        n_steps = nominal if steps is None else max(0, min(int(steps), nominal))
        label = operator_label(operator)
        total_lanes = 2 * n_vertices

        # Live state: one buffer per array.  The per-step gathers below
        # snapshot everything a launch reads before it writes, which is the
        # compacted equivalent of the paper's ping-pong back buffer.
        q = self._q0.copy()
        payload = {
            name: np.array(arr, copy=True)
            for name, arr in operator.init(self.factor, graph).items()
        }
        names = tuple(payload)

        with trace_span(
            "bidirectional-scan",
            category="stage",
            operator=label,
            steps=n_steps,
            total_lanes=total_lanes,
            compaction=self.policy.name,
        ) as stage:
            launches, active_history, decisions = self._run_steps(
                operator, q, payload, names, n_steps, label, total_lanes
            )
            if stage is not None:
                stage.attributes.update(
                    launches=launches, converged=bool((q < 0).all())
                )

        return ScanResult(
            q=q,
            payload=payload,
            steps=n_steps,
            launches=launches,
            active_per_launch=tuple(active_history),
            compaction_decisions=tuple(decisions),
        )

    def _run_steps(
        self,
        operator: ScanOperator,
        q: np.ndarray,
        payload: Payload,
        names: tuple[str, ...],
        n_steps: int,
        label: str,
        total_lanes: int,
    ) -> tuple[int, list[int], list[CompactionDecision]]:
        """The butterfly step loop; mutates ``q``/``payload`` in place."""
        ids = self._ids
        launches = 0
        active_history: list[int] = []
        decisions: list[CompactionDecision] = []
        # Per-lane candidate lists: supersets of the active (unclamped)
        # lanes.  The compaction policy decides when a list is re-gathered
        # down to exactly the active set; until then dead candidates ride
        # along and are skipped in-kernel (their id + marker reads are the
        # accounted dead-lane traffic the adaptive policy trades off).
        cand = [self._ids, self._ids]

        for step in range(n_steps):
            # Host-side convergence check (a device-side reduction + copy of
            # one word in CUDA terms): lanes holding markers never change.
            alive = [q[cand[0], 0] >= 0, q[cand[1], 1] >= 0]
            idx0 = cand[0][alive[0]]
            idx1 = cand[1][alive[1]]
            n_active = int(idx0.size + idx1.size)
            if n_active == 0:
                break  # every lane is a path end — the scan has converged
            n_dead = int(cand[0].size + cand[1].size) - n_active
            decision = None
            if n_dead:
                decision = self.policy.decide(
                    FrontierState(
                        live=n_active,
                        dead=n_dead,
                        gather_element_bytes=CAND_GATHER_BYTES,
                        dead_element_bytes=CAND_DEAD_BYTES,
                        rounds_remaining=n_steps - step,
                    )
                )
                decisions.append(decision)
                if decision.compact:
                    dead_reads = ()
                    cand = [idx0, idx1]
                else:
                    dead_reads = (
                        cand[0][~alive[0]],
                        q[cand[0][~alive[0]], 0],
                        cand[1][~alive[1]],
                        q[cand[1][~alive[1]], 1],
                    )
            active_history.append(n_active)
            with self.device.launch(
                f"bidirectional-scan[{label}|step={step}]",
                active_lanes=n_active,
                total_lanes=total_lanes,
            ) as kl:
                if decision is not None:
                    record_decision(decision, engine="scan", launch=kl)
                    if not decision.compact:
                        # dead candidates are streamed and skipped in-kernel
                        kl.reads(*dead_reads)
                # Gather phase: snapshot the far tuples of every active lane
                # (fancy indexing copies), completing all reads of the step
                # before any write — the role of the ping-pong back buffer.
                gathered = []
                for lane, idx in ((0, idx0), (1, idx1)):
                    if idx.size == 0:
                        gathered.append(None)
                        continue
                    far = q[idx, lane]
                    far_q = q[far]  # (m, 2) — the neighbour's snapshot
                    far_p = {name: payload[name][far] for name in names}
                    kl.reads(idx, far, far_q, *far_p.values())
                    gathered.append((idx, far_q, far_p))
                # Scatter phase: lane 0 writes only column 0 and lane 1 only
                # column 1, so the in-place updates cannot alias a gather.
                for lane, pack in ((0, gathered[0]), (1, gathered[1])):
                    if pack is None:
                        continue
                    idx, far_q, far_p = pack
                    # Alg. 3 lines 15-20: both tuple entries of the far
                    # neighbour are inspected; the one that is not this very
                    # vertex extends the segment (sequential j = 0, 1
                    # semantics: a second match overwrites the first).
                    for j in (0, 1):
                        extend = far_q[:, j] != ids[idx]
                        sub = idx[extend]
                        if sub.size == 0:
                            continue
                        current = {name: payload[name][sub, lane] for name in names}
                        kl.reads(*current.values())
                        contribution = {name: far_p[name][extend, j] for name in far_p}
                        merged = operator.combine(current, contribution)
                        for name in names:
                            payload[name][sub, lane] = merged[name]
                            kl.writes(merged[name])
                        new_q = far_q[extend, j]
                        q[sub, lane] = new_q
                        kl.writes(new_q)
            launches += 1

        return launches, active_history, decisions
