"""The bidirectional scan — Algorithm 3 / Section 4.2 of the paper.

A [0,2]-factor is structured like a doubly-linked list *with unknown
orientation*: every vertex knows its (at most two) neighbours but not which
one is "forward".  Classical parallel scans (Thrust, CUB, parallel STL)
require random-access iterators and cannot run on such a structure.  The
bidirectional scan runs two pointer-jumping scans in both directions
simultaneously with a butterfly access pattern (Figure 2): each vertex keeps a
stride-q neighbour per direction and, per step, absorbs the payload of the
segment behind that neighbour, doubling q.  ``log₂(N)`` kernel launches
suffice even if all vertices lie on one path.

Encoding (Section 4.2): a lane that has reached a path end stores the
*negative 1-based id* of the end vertex, ``-(end + 1)``; a lane that is still
positive after the final step proves its vertex lies on a cycle.

All lane state lives in ping-pong buffers: a kernel reads the previous
launch's snapshot (``q'``, ``r'`` in the paper) and writes fresh buffers, so
no thread can observe a half-updated neighbour.

The payload and its ⊕ are pluggable (the scan is "parameterized on the
operation" like ``thrust::inclusive_scan``): :class:`AddOperator` computes
path positions (step 2 of Section 3.3), :class:`MinEdgeOperator` finds the
weakest edge of each cycle (step 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol

import numpy as np

from .._validation import INDEX_DTYPE, VALUE_DTYPE
from ..device.buffers import PingPong
from ..device.device import Device, default_device
from ..errors import ScanError
from ..sparse.csr import CSRMatrix
from .structures import NO_PARTNER, Factor

__all__ = [
    "AddOperator",
    "BidirectionalScan",
    "MaxVertexOperator",
    "MinEdgeOperator",
    "NullOperator",
    "ScanResult",
    "WeightedAddOperator",
    "decode_end",
    "is_path_end",
    "scan_steps",
]

Payload = dict[str, np.ndarray]


def is_path_end(q: np.ndarray) -> np.ndarray:
    """A lane value marks a path end iff it is negative."""
    return q < 0


def decode_end(q: np.ndarray) -> np.ndarray:
    """Recover the end-vertex id from a path-end marker ``-(end + 1)``."""
    return -q - 1


def scan_steps(n_vertices: int) -> int:
    """Number of kernel launches: ⌈log₂(N)⌉ (Section 4.2)."""
    if n_vertices <= 1:
        return 0
    return int(np.ceil(np.log2(n_vertices)))


class ScanOperator(Protocol):
    """The pluggable ⊕ of the bidirectional scan.

    ``init`` produces the per-lane payload arrays of shape ``(N, 2)``;
    ``combine`` merges the far segment's payload into the current one (both
    arguments are flat selections of lane entries) and must be vectorized and
    side-effect free.
    """

    def init(self, factor: Factor, graph: CSRMatrix | None) -> Payload: ...

    def combine(self, current: Payload, far: Payload) -> Payload: ...


class NullOperator:
    """No payload — used when only connectivity (cycle detection) matters."""

    def init(self, factor: Factor, graph: CSRMatrix | None) -> Payload:
        return {}

    def combine(self, current: Payload, far: Payload) -> Payload:
        return {}


class AddOperator:
    """Path-position payload: each lane starts at 1 and sums over the path.

    After the scan, the lane pointing at end ``e`` holds
    ``dist(v, e) + 1`` — the 1-based position of ``v`` counted from ``e``
    (Algorithm 3 lines 2 and 17).
    """

    def init(self, factor: Factor, graph: CSRMatrix | None) -> Payload:
        return {"r": np.ones((factor.n_vertices, 2), dtype=INDEX_DTYPE)}

    def combine(self, current: Payload, far: Payload) -> Payload:
        return {"r": current["r"] + far["r"]}


class WeightedAddOperator:
    """Weighted path positions: each lane accumulates the |weight| of the
    traversed edges instead of a unit step.

    Demonstrates the Thrust-style operator parameterization of the scan: the
    same butterfly computes, per vertex and direction, the total edge weight
    between the vertex and the path end.  (The lane pointing at end ``e``
    finally holds ``weight(v .. e) + 1`` — the ``+1`` mirrors the unit
    initialisation of Algorithm 3 so that path ends report 1.)
    """

    def init(self, factor: Factor, graph: CSRMatrix | None) -> Payload:
        if graph is None:
            raise ScanError("WeightedAddOperator requires the weighted graph")
        n_vertices = factor.n_vertices
        ids = np.arange(n_vertices, dtype=INDEX_DTYPE)
        r = np.ones((n_vertices, 2), dtype=VALUE_DTYPE)
        for lane in (0, 1):
            if lane < factor.n:
                nbr = factor.neighbors[:, lane]
            else:
                nbr = np.full(n_vertices, NO_PARTNER, dtype=INDEX_DTYPE)
            valid = nbr != NO_PARTNER
            r[valid, lane] = np.abs(graph.gather(ids[valid], nbr[valid]))
        return {"r": r}

    def combine(self, current: Payload, far: Payload) -> Payload:
        return {"r": current["r"] + far["r"]}


class MaxVertexOperator:
    """Broadcast the maximum vertex id of the component to every member.

    The paper notes the scan can "find and broadcast a specific value" —
    this is that use: an idempotent maximum, valid on paths *and* cycles.
    """

    def init(self, factor: Factor, graph: CSRMatrix | None) -> Payload:
        n_vertices = factor.n_vertices
        ids = np.arange(n_vertices, dtype=INDEX_DTYPE)
        m = np.empty((n_vertices, 2), dtype=INDEX_DTYPE)
        for lane in (0, 1):
            if lane < factor.n:
                nbr = factor.neighbors[:, lane]
            else:
                nbr = np.full(n_vertices, NO_PARTNER, dtype=INDEX_DTYPE)
            m[:, lane] = np.where(nbr == NO_PARTNER, ids, np.maximum(ids, nbr))
        return {"m": m}

    def combine(self, current: Payload, far: Payload) -> Payload:
        return {"m": np.maximum(current["m"], far["m"])}


class MinEdgeOperator:
    """Weakest-edge payload for cycle breaking (Section 3.3 step 1).

    Each lane starts with the incident factor edge in its direction,
    identified by the triple (|weight|, min endpoint, max endpoint) — *"the
    weakest edge is uniquely identified by the weight and the IDs of the
    incident vertices"*.  ⊕ is the lexicographic minimum, which is
    idempotent, so the overlapping segment coverage that pointer jumping
    produces on cycles is harmless.
    """

    _INF = np.iinfo(INDEX_DTYPE).max

    def init(self, factor: Factor, graph: CSRMatrix | None) -> Payload:
        if graph is None:
            raise ScanError("MinEdgeOperator requires the weighted graph")
        n_vertices = factor.n_vertices
        ids = np.arange(n_vertices, dtype=INDEX_DTYPE)
        w = np.full((n_vertices, 2), np.inf, dtype=VALUE_DTYPE)
        u = np.full((n_vertices, 2), self._INF, dtype=INDEX_DTYPE)
        v = np.full((n_vertices, 2), self._INF, dtype=INDEX_DTYPE)
        for lane in (0, 1):
            nbr = factor.neighbors[:, lane] if lane < factor.n else np.full(n_vertices, NO_PARTNER)
            valid = nbr != NO_PARTNER
            vv = ids[valid]
            nn = nbr[valid]
            w[valid, lane] = np.abs(graph.gather(vv, nn))
            u[valid, lane] = np.minimum(vv, nn)
            v[valid, lane] = np.maximum(vv, nn)
        return {"w": w, "u": u, "v": v}

    def combine(self, current: Payload, far: Payload) -> Payload:
        take_far = far["w"] < current["w"]
        tie_w = far["w"] == current["w"]
        take_far |= tie_w & (far["u"] < current["u"])
        take_far |= tie_w & (far["u"] == current["u"]) & (far["v"] < current["v"])
        return {
            "w": np.where(take_far, far["w"], current["w"]),
            "u": np.where(take_far, far["u"], current["u"]),
            "v": np.where(take_far, far["v"], current["v"]),
        }


@dataclass(frozen=True)
class ScanResult:
    """Final lane state of a bidirectional scan."""

    q: np.ndarray  # (N, 2) — markers -(end+1), or positive ids on cycles
    payload: Mapping[str, np.ndarray]  # each (N, 2)
    steps: int
    launches: int

    @property
    def cycle_mask(self) -> np.ndarray:
        """Vertices whose lanes never reached a path end lie on a cycle."""
        return (self.q >= 0).any(axis=1)


class BidirectionalScan:
    """Runs Algorithm 3's butterfly pointer jumping on a [0,≤2]-factor."""

    def __init__(self, factor: Factor, *, device: Device | None = None):
        if factor.n > 2:
            raise ScanError(
                f"the bidirectional scan requires a [0,2]-factor, got n={factor.n}"
            )
        self.factor = factor
        self.device = device or default_device()
        n_vertices = factor.n_vertices
        ids = np.arange(n_vertices, dtype=INDEX_DTYPE)
        q0 = np.full((n_vertices, 2), 0, dtype=INDEX_DTYPE)
        for lane in (0, 1):
            if lane < factor.n:
                nbr = factor.neighbors[:, lane]
            else:
                nbr = np.full(n_vertices, NO_PARTNER, dtype=INDEX_DTYPE)
            # missing neighbours mark this very vertex as the path end
            q0[:, lane] = np.where(nbr == NO_PARTNER, -(ids + 1), nbr)
        self._q0 = q0
        self._ids = ids

    def run(
        self,
        operator: ScanOperator,
        graph: CSRMatrix | None = None,
        *,
        steps: int | None = None,
    ) -> ScanResult:
        """Execute the scan with the given ⊕ operator.

        ``steps`` defaults to ⌈log₂(N)⌉ — enough for a single path spanning
        all vertices; pass a smaller value only for illustration (e.g. the
        Figure 2 trace).
        """
        n_vertices = self.factor.n_vertices
        n_steps = scan_steps(n_vertices) if steps is None else steps
        ids = self._ids
        q_pp = PingPong(self._q0)
        payload0 = operator.init(self.factor, graph)
        payload_pp = {name: PingPong(arr) for name, arr in payload0.items()}
        launches = 0

        for step in range(n_steps):
            q_back = q_pp.back
            p_back = {name: pp.back for name, pp in payload_pp.items()}
            q_front = q_pp.front
            p_front = {name: pp.front for name, pp in payload_pp.items()}
            reads = [q_back, *p_back.values()]
            writes = [q_front, *p_front.values()]
            with self.device.launch(f"bidirectional-scan[step={step}]", reads=reads, writes=writes):
                q_front[...] = q_back
                for name in p_front:
                    p_front[name][...] = p_back[name]
                for lane in (0, 1):
                    w = q_back[:, lane]
                    active = ~is_path_end(w)
                    idx = np.flatnonzero(active)
                    if idx.size == 0:
                        continue
                    far = w[idx]
                    far_q = q_back[far]  # (m, 2) — the neighbour's snapshot
                    far_p = {name: p_back[name][far] for name in p_back}
                    # Alg. 3 lines 15-20: both tuple entries of the far
                    # neighbour are inspected; the one that is not this very
                    # vertex extends the segment (sequential j = 0, 1
                    # semantics: a second match overwrites the first).
                    for j in (0, 1):
                        extend = far_q[:, j] != ids[idx]
                        sub = idx[extend]
                        if sub.size == 0:
                            continue
                        current = {name: p_front[name][sub, lane] for name in p_front}
                        contribution = {name: far_p[name][extend, j] for name in far_p}
                        merged = operator.combine(current, contribution)
                        for name in p_front:
                            p_front[name][sub, lane] = merged[name]
                        q_front[sub, lane] = far_q[extend, j]
            launches += 1
            q_pp.swap()
            for pp in payload_pp.values():
                pp.swap()

        return ScanResult(
            q=q_pp.back.copy(),
            payload={name: pp.back.copy() for name, pp in payload_pp.items()},
            steps=n_steps,
            launches=launches,
        )
