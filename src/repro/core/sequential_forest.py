"""Sequential CPU reference for the linear-forest extraction (Figure 5).

The paper compares its parallel GPU extraction against a sequential CPU
version that *"performs far less work: it creates the permutation while the
vertices are visited without an explicit sorting"*.  This module is that
baseline: plain Python path walking.  It doubles as the oracle for the
parallel pipeline — given the same [0,2]-factor it must produce the same
path ids, positions and permutation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import INDEX_DTYPE
from ..sparse.csr import CSRMatrix
from .structures import NO_PARTNER, Factor

__all__ = ["SequentialForestResult", "sequential_linear_forest"]


@dataclass(frozen=True)
class SequentialForestResult:
    forest: Factor
    path_id: np.ndarray
    position: np.ndarray
    perm: np.ndarray
    removed_edges: list[tuple[int, int]]


def _edge_key(graph: CSRMatrix, a: int, b: int) -> tuple[float, int, int]:
    w = abs(float(graph.gather(np.array([a]), np.array([b]))[0]))
    return (w, min(a, b), max(a, b))


def sequential_linear_forest(
    factor: Factor,
    graph: CSRMatrix,
) -> SequentialForestResult:
    """Break cycles and order paths, sequentially.

    Pass 1 walks every cycle, finds its weakest edge (the unique minimum of
    (|weight|, min id, max id)) and removes it.  Pass 2 visits vertices in
    ascending id; every unvisited degree-≤1 vertex starts a new path — since
    ids ascend, each path is first entered at its minimum end, which
    reproduces the paper's path-id and orientation convention without any
    sort.
    """
    n_vertices = factor.n_vertices
    adjacency: list[list[int]] = [
        [int(w) for w in row if w != NO_PARTNER] for row in factor.neighbors
    ]
    visited = np.zeros(n_vertices, dtype=bool)
    removed: list[tuple[int, int]] = []

    # pass 1: cycles --------------------------------------------------------
    for start in range(n_vertices):
        if visited[start] or len(adjacency[start]) != 2:
            continue
        # follow the chain; if it returns to start it is a cycle
        chain = [start]
        prev, cur = start, adjacency[start][0]
        is_cycle = False
        while True:
            if cur == start:
                is_cycle = True
                break
            if visited[cur]:
                break  # joined an already-classified path stretch
            chain.append(cur)
            nxt = [w for w in adjacency[cur] if w != prev]
            if not nxt:
                break
            prev, cur = cur, nxt[0]
        for v in chain:
            visited[v] = True
        if not is_cycle:
            continue
        weakest = None
        for idx, v in enumerate(chain):
            w = chain[(idx + 1) % len(chain)]
            key = _edge_key(graph, v, w)
            if weakest is None or key < weakest:
                weakest = key
        assert weakest is not None
        _, a, b = weakest
        adjacency[a].remove(b)
        adjacency[b].remove(a)
        removed.append((a, b))
    visited[:] = False

    # pass 2: paths --------------------------------------------------------
    path_id = np.full(n_vertices, -1, dtype=INDEX_DTYPE)
    position = np.zeros(n_vertices, dtype=INDEX_DTYPE)
    perm: list[int] = []
    for start in range(n_vertices):
        if visited[start] or len(adjacency[start]) > 1:
            continue
        pos = 1
        prev, cur = -1, start
        while cur != -1:
            visited[cur] = True
            path_id[cur] = start
            position[cur] = pos
            perm.append(cur)
            pos += 1
            nxt = [w for w in adjacency[cur] if w != prev]
            prev, cur = cur, nxt[0] if nxt else -1

    neighbors = np.full((n_vertices, 2), NO_PARTNER, dtype=INDEX_DTYPE)
    for v, nbrs in enumerate(adjacency):
        for slot, w in enumerate(nbrs):
            neighbors[v, slot] = w
    return SequentialForestResult(
        forest=Factor(neighbors),
        path_id=path_id,
        position=position,
        perm=np.asarray(perm, dtype=INDEX_DTYPE),
        removed_edges=removed,
    )
