"""Incremental extraction for dynamic graphs — the delta engine.

The paper's machinery is frontier-local: a proposition round only consults a
vertex's direct neighbourhood, and the bidirectional scan only walks along
factor edges.  When the weighted graph receives a small edit batch (edge
inserts / deletes / reweights), the updated linear forest therefore differs
from the previous one only *near* the touched vertices — yet a naive client
re-runs the whole pipeline.  :func:`apply_edits` exploits the locality:

1. **Invalidation frontier.**  Let ``T`` be the set of edit endpoints,
   ``M = config.max_iterations`` the round bound of Algorithm 2, and
   ``R = 2M - 1`` (:func:`invalidation_radius`).  One proposition round
   moves a state difference up to **two** hops: a vertex's new
   confirmations are the *mutual* proposals, and a neighbour's proposal
   depends on the saturation state of the neighbour's own neighbours
   (propose reads one hop out, mutualize reads the proposers' reads); the
   first round only sees the static rows one hop out, hence ``2M - 1``
   over a full run.  Charges hash the *global* vertex id
   (:func:`~repro.core.charge.vertex_charges`), so they are
   edit-invariant.  After ``M`` rounds only ``ball(T, R)`` can differ
   from the previous factor.
2. **Frontier-local recompute.**  The factor rounds re-run on the subgraph
   induced by ``ball(T, 2R+1)`` (only the region boundary's rows are
   truncated by the cut, and the boundary sits ``R+1`` hops from the core
   — too far for the truncation to reach it, by the same propagation
   bound), through the ordinary
   :class:`~repro.core.proposer.PropositionEngine` round loop of
   :func:`~repro.core.factor.parallel_factor`, with ``charge_ids`` mapping
   region vertices back to their global identities.  Rows of ``ball(T, R)``
   are then spliced into the previous confirmed-partner array; every other
   row is reused verbatim.
3. **Localized rescan.**  Only components of the new factor that contain a
   touched or changed vertex are re-walked for cycle breaking and path
   ids/positions (the paper's path-id convention — minimum end id, position
   1 at that end — is intrinsic to a component, so untouched components keep
   their ids).  Band coefficients are spliced the same way: untouched paths
   copy their old band values to their new offsets, recomputed paths gather
   from the edited matrix.

The recompute runs on a scratch device and is metered on the caller's device
as four fused ``delta.*`` launches (a region thousands of times smaller than
the graph fits a persistent kernel, so the round loop's launch overhead
amortizes into one) whose byte volume is the scratch device's measured
traffic — the gate in ``benchmarks/test_delta_budget.py`` pins both launches
and bytes at a small fraction of a from-scratch run (``delta_budget.json``).

Correctness bar (ROADMAP): the spliced result is **bit-identical** to a
from-scratch :func:`~repro.core.pipeline.extract_linear_forest` on the edited
matrix — every array, including factor slot order — property-tested over
random edit batches × dtype × compaction policy in
``tests/properties/test_delta_properties.py``.  Sharded runs (``devices>1``)
fall back to a full re-run with a :class:`DeltaFallbackWarning`: the halo
protocol has no update path yet.  See ``docs/INCREMENTAL.md``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .._validation import INDEX_DTYPE, require
from ..device.device import Device, DeviceGroup, KernelLaunch, default_device
from ..device.profiler import TimingBreakdown
from ..errors import ConfigError, ShapeError
from ..obs import Tracer, current_metrics, trace_span
from ..sparse.build import prepare_graph
from ..sparse.coo import COOMatrix
from ..sparse.csr import CSRMatrix
from .coverage import coverage as coverage_of
from .cycles import BrokenCycles
from .extraction import TridiagonalSystem
from .factor import ParallelFactorConfig, ParallelFactorResult, parallel_factor
from .paths import PathInfo
from .permutation import forest_permutation, inverse_permutation
from .pipeline import (
    PHASE_EXTRACT,
    PHASE_FACTOR,
    PHASE_SCANS,
    LinearForestResult,
    extract_linear_forest,
)
from .structures import NO_PARTNER, Factor

__all__ = [
    "DeltaFallbackWarning",
    "DeltaResult",
    "DeltaStats",
    "EditBatch",
    "apply_edits",
    "apply_edits_to_matrix",
    "invalidation_radius",
]


class DeltaFallbackWarning(UserWarning):
    """The delta engine fell back to a full from-scratch re-run."""


# ---------------------------------------------------------------------------
# Edit batches
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EditBatch:
    """A batch of undirected edge edits against a weighted graph.

    Each entry edits the (symmetric) off-diagonal pair ``(u, v)``/``(v, u)``
    of the *original* matrix: ``delete[i]`` removes the coupling, otherwise
    its value is set to ``w[i]`` — inserting the entry when absent,
    reweighting it when present.  Later entries win over earlier ones on the
    same pair.  Diagonal entries are not editable (they never enter the
    factor; re-extract from scratch if the diagonal changes).

    The JSON form (CLI ``--edits`` files and the serve ``update`` op) is a
    list of objects: ``{"u": 3, "v": 7, "w": 0.25}`` sets a weight and
    ``{"u": 3, "v": 7, "delete": true}`` removes the edge.
    """

    u: np.ndarray
    v: np.ndarray
    w: np.ndarray
    delete: np.ndarray

    def __post_init__(self) -> None:
        u = np.ascontiguousarray(self.u, dtype=INDEX_DTYPE)
        v = np.ascontiguousarray(self.v, dtype=INDEX_DTYPE)
        w = np.ascontiguousarray(self.w, dtype=np.float64)
        delete = np.ascontiguousarray(self.delete, dtype=bool)
        require(
            u.ndim == 1 and u.shape == v.shape == w.shape == delete.shape,
            "u, v, w, delete must be equal-length 1-D arrays",
            ShapeError,
        )
        require(bool((u != v).all()), "self-loop edits are not allowed", ConfigError)
        require(
            bool((u >= 0).all() and (v >= 0).all()),
            "negative vertex id in edit batch",
            ConfigError,
        )
        live = ~delete
        if bool(live.any()):
            require(
                bool(np.isfinite(w[live]).all()),
                "edit weights must be finite",
                ConfigError,
            )
            require(
                bool((w[live] != 0.0).all()),
                "weight 0 would drop the entry; use a delete edit instead",
                ConfigError,
            )
        object.__setattr__(self, "u", u)
        object.__setattr__(self, "v", v)
        object.__setattr__(self, "w", w)
        object.__setattr__(self, "delete", delete)

    def __len__(self) -> int:
        return int(self.u.size)

    @cached_property
    def touched(self) -> np.ndarray:
        """Sorted unique endpoint ids of the batch (the seed set ``T``)."""
        return np.unique(np.concatenate([self.u, self.v]))

    @staticmethod
    def empty() -> "EditBatch":
        return EditBatch(
            u=np.empty(0, dtype=INDEX_DTYPE),
            v=np.empty(0, dtype=INDEX_DTYPE),
            w=np.empty(0, dtype=np.float64),
            delete=np.empty(0, dtype=bool),
        )

    @staticmethod
    def single(u: int, v: int, w: float | None = None) -> "EditBatch":
        """One edit: set ``{u, v}`` to ``w``, or delete it when ``w is None``."""
        return EditBatch(
            u=np.array([u]),
            v=np.array([v]),
            w=np.array([0.0 if w is None else w]),
            delete=np.array([w is None]),
        )

    @classmethod
    def from_dicts(cls, edits: list) -> "EditBatch":
        """Parse the JSON form (see the class docstring)."""
        if not isinstance(edits, list):
            raise ConfigError(f"edit batch must be a list, got {type(edits).__name__}")
        u, v, w, delete = [], [], [], []
        for i, e in enumerate(edits):
            if not isinstance(e, dict):
                raise ConfigError(f"edit #{i} must be an object, got {type(e).__name__}")
            unknown = set(e) - {"u", "v", "w", "delete"}
            if unknown:
                raise ConfigError(f"edit #{i} has unknown keys {sorted(unknown)}")
            try:
                u.append(int(e["u"]))
                v.append(int(e["v"]))
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigError(f"edit #{i} needs integer 'u' and 'v'") from exc
            if e.get("delete", False):
                if "w" in e:
                    raise ConfigError(f"edit #{i} sets both 'w' and 'delete'")
                delete.append(True)
                w.append(0.0)
            else:
                try:
                    w.append(float(e["w"]))
                except (KeyError, TypeError, ValueError) as exc:
                    raise ConfigError(
                        f"edit #{i} needs a numeric 'w' (or 'delete': true)"
                    ) from exc
                delete.append(False)
        return cls(
            u=np.array(u, dtype=INDEX_DTYPE),
            v=np.array(v, dtype=INDEX_DTYPE),
            w=np.array(w, dtype=np.float64),
            delete=np.array(delete, dtype=bool),
        )

    def to_dicts(self) -> list:
        """The JSON form of the batch (inverse of :meth:`from_dicts`)."""
        out = []
        for i in range(len(self)):
            if bool(self.delete[i]):
                out.append({"u": int(self.u[i]), "v": int(self.v[i]), "delete": True})
            else:
                out.append(
                    {"u": int(self.u[i]), "v": int(self.v[i]), "w": float(self.w[i])}
                )
        return out


def apply_edits_to_matrix(a: CSRMatrix, edits: EditBatch) -> CSRMatrix:
    """The edited matrix — the ground truth a delta run must reproduce.

    Every edit replaces the symmetric pair ``(u, v)`` and ``(v, u)`` of the
    original matrix (both directions, so a pattern-symmetric input stays
    pattern-symmetric); deletes drop both entries.  This is a host-side
    assembly step, not a kernel: the from-scratch comparison run receives
    exactly this matrix.
    """
    if a.n_rows != a.n_cols:
        raise ShapeError("edit batches are defined on square adjacency matrices")
    if len(edits) == 0:
        return a
    n = a.n_rows
    if int(edits.touched[-1]) >= n:
        raise ConfigError(
            f"edit endpoint {int(edits.touched[-1])} out of range for a {n}-vertex graph"
        )
    # later edits win: keep the last entry per unordered pair
    lo = np.minimum(edits.u, edits.v)
    hi = np.maximum(edits.u, edits.v)
    pair_keys = lo * n + hi
    _, last_in_reversed = np.unique(pair_keys[::-1], return_index=True)
    keep = len(edits) - 1 - last_in_reversed
    lo, hi, w, delete = lo[keep], hi[keep], edits.w[keep], edits.delete[keep]

    coo = a.to_coo()
    entry_keys = np.minimum(coo.row, coo.col) * n + np.maximum(coo.row, coo.col)
    survivors = ~np.isin(entry_keys, lo * n + hi)
    sets = ~delete
    new_rows = np.concatenate([coo.row[survivors], lo[sets], hi[sets]])
    new_cols = np.concatenate([coo.col[survivors], hi[sets], lo[sets]])
    new_vals = np.concatenate(
        [coo.val[survivors], w[sets].astype(a.data.dtype), w[sets].astype(a.data.dtype)]
    ).astype(a.data.dtype)
    return COOMatrix(row=new_rows, col=new_cols, val=new_vals, shape=a.shape).to_csr()


# ---------------------------------------------------------------------------
# Invalidation frontier
# ---------------------------------------------------------------------------


def invalidation_radius(config: ParallelFactorConfig) -> int:
    """Hops a factor-state difference can travel over a full run.

    One round moves a difference up to **two** hops, not one: a vertex's new
    confirmations are the *mutual* proposals, and a neighbour's proposal
    depends on the saturation state of the neighbour's own neighbours
    (propose reads one hop, mutualize reads the proposers' reads).  The
    first round only reads the static rows one hop out, so after ``M``
    rounds a difference reaches at most ``2M - 1`` hops from its origin.
    """
    return 2 * int(config.max_iterations) - 1


def _ball(graph: CSRMatrix, seeds: np.ndarray, radius: int) -> np.ndarray:
    """Hop distance from the seed set, clipped at ``radius + 1``.

    Distances are measured on the *edited* prepared graph; this equals the
    distance in the union of the old and new graphs because every old-only
    (deleted) edge has both endpoints in the seed set, so crossing one never
    shortens a path from the set.
    """
    dist = np.full(graph.n_rows, radius + 1, dtype=INDEX_DTYPE)
    frontier = np.unique(seeds)
    dist[frontier] = 0
    for level in range(1, radius + 1):
        if frontier.size == 0:
            break
        in_frontier = np.zeros(graph.n_rows, dtype=bool)
        in_frontier[frontier] = True
        neighbours = graph.indices[np.repeat(in_frontier, graph.row_lengths)]
        frontier = np.unique(neighbours[dist[neighbours] > level])
        dist[frontier] = level
    return dist


def _induced_subgraph(
    graph: CSRMatrix, members: np.ndarray
) -> tuple[CSRMatrix, np.ndarray]:
    """Induced subgraph on ``members`` (sorted global ids) with monotone
    relabelling — row order and within-row column order are preserved, so the
    proposition engine sees its rows exactly as it would in the full graph.
    Returns the subgraph and the global→local id map (−1 outside)."""
    local = np.full(graph.n_rows, -1, dtype=INDEX_DTYPE)
    local[members] = np.arange(members.size, dtype=INDEX_DTYPE)
    member_mask = np.zeros(graph.n_rows, dtype=bool)
    member_mask[members] = True
    take = np.flatnonzero(np.repeat(member_mask, graph.row_lengths))
    take = take[member_mask[graph.indices[take]]]
    rows_local = local[graph.nnz_rows[take]]
    indptr = np.zeros(members.size + 1, dtype=INDEX_DTYPE)
    np.add.at(indptr, rows_local + 1, 1)
    np.cumsum(indptr, out=indptr)
    sub = CSRMatrix(
        indptr=indptr,
        indices=local[graph.indices[take]],
        data=graph.data[take],
        shape=(int(members.size), int(members.size)),
    )
    return sub, local


# ---------------------------------------------------------------------------
# Localized rescan (cycle breaking + path ids/positions)
# ---------------------------------------------------------------------------


def _walk_component(neighbors: np.ndarray, start: int) -> tuple[list, bool]:
    """Vertices of ``start``'s component in walk order, and whether it is a
    cycle.  For a path the order runs end-to-end; for a cycle, once around
    from ``start``."""
    first = int(neighbors[start, 0])
    if first == NO_PARTNER:
        return [start], False
    order = [start]
    prev, cur = start, first
    while cur != start:
        order.append(cur)
        a, b = int(neighbors[cur, 0]), int(neighbors[cur, 1])
        nxt = b if a == prev else a
        if nxt == NO_PARTNER:
            break
        prev, cur = cur, nxt
    if cur == start:
        return order, True
    # reached an end; extend the other way from `start` to the far end
    back = []
    prev, cur = start, int(neighbors[start, 1])
    while cur != NO_PARTNER:
        back.append(cur)
        a, b = int(neighbors[cur, 0]), int(neighbors[cur, 1])
        cur, prev = (b if a == prev else a), cur
    back.reverse()
    return back + order, False


def _weakest_cycle_edge(order: list, graph: CSRMatrix) -> tuple[int, int, int]:
    """Index (in cycle order) and endpoints of the cycle's weakest edge —
    the lexicographic minimum of the :class:`~repro.core.scan.MinEdgeOperator`
    triple (|weight|, min endpoint id, max endpoint id)."""
    arr = np.asarray(order, dtype=INDEX_DTYPE)
    nxt = np.roll(arr, -1)
    w = np.abs(graph.gather(arr, nxt))
    lo = np.minimum(arr, nxt)
    hi = np.maximum(arr, nxt)
    best = int(np.lexsort((hi, lo, w))[0])
    return best, int(lo[best]), int(hi[best])


def _rescan_region(
    raw_factor: Factor,
    graph: CSRMatrix,
    region: np.ndarray,
    previous: LinearForestResult,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Recompute path ids/positions/cycles for the affected components.

    ``region`` is a boolean vertex mask closed under components of
    ``raw_factor`` (no factor edge leaves it).  Returns the new per-vertex
    ``path_id``/``position``/``cycle_mask`` arrays (previous values outside
    the region), the full removed-edge pair arrays, and the number of
    re-walked components.
    """
    neighbors = raw_factor.neighbors
    path_id = previous.paths.path_id.copy()
    position = previous.paths.position.copy()
    cycle_mask = previous.broken.cycle_mask.copy()

    # removed pairs of untouched cycles survive; affected ones are re-derived
    old_u, old_v = previous.broken.removed_u, previous.broken.removed_v
    kept = ~region[old_u] if old_u.size else np.empty(0, dtype=bool)
    pairs = list(zip(old_u[kept].tolist(), old_v[kept].tolist()))

    visited = ~region
    visited = visited.copy()
    n_components = 0
    for seed in np.flatnonzero(region):
        seed = int(seed)
        if visited[seed]:
            continue
        order, is_cycle = _walk_component(neighbors, seed)
        n_components += 1
        if is_cycle:
            cut, lo, hi = _weakest_cycle_edge(order, graph)
            pairs.append((lo, hi))
            # the path runs from one endpoint of the removed edge to the other
            order = order[cut + 1 :] + order[: cut + 1]
        arr = np.asarray(order, dtype=INDEX_DTYPE)
        visited[arr] = True
        cycle_mask[arr] = is_cycle
        if int(arr[0]) > int(arr[-1]):
            arr = arr[::-1]  # position 1 sits at the smaller end id
        path_id[arr] = arr[0]
        position[arr] = np.arange(1, arr.size + 1, dtype=INDEX_DTYPE)

    if pairs:
        pair_arr = np.unique(np.asarray(pairs, dtype=INDEX_DTYPE), axis=0)
        removed_u, removed_v = pair_arr[:, 0], pair_arr[:, 1]
    else:
        removed_u = np.empty(0, dtype=INDEX_DTYPE)
        removed_v = np.empty(0, dtype=INDEX_DTYPE)
    return path_id, position, cycle_mask, removed_u, removed_v, n_components


def _splice_bands(
    a: CSRMatrix,
    previous: LinearForestResult,
    paths: PathInfo,
    perm: np.ndarray,
    region: np.ndarray,
) -> TridiagonalSystem:
    """Band buffers of the edited system: untouched vertices copy their old
    band values to their new offsets, affected positions gather from the
    edited matrix — reproducing the scatter of
    :func:`~repro.core.extraction.extract_tridiagonal` exactly (band values
    are raw copies of matrix entries, so no floating-point arithmetic enters
    the splice)."""
    n = a.n_rows
    band_dtype = a.data.dtype
    dl = np.zeros(n, dtype=band_dtype)
    d = np.zeros(n, dtype=band_dtype)
    du = np.zeros(n, dtype=band_dtype)
    new_index = inverse_permutation(perm)

    reused = np.flatnonzero(~region)
    if reused.size:
        old_index = inverse_permutation(previous.perm)
        dl[new_index[reused]] = previous.tridiagonal.dl[old_index[reused]]
        d[new_index[reused]] = previous.tridiagonal.d[old_index[reused]]
        du[new_index[reused]] = previous.tridiagonal.du[old_index[reused]]

    fresh = np.flatnonzero(region)
    if fresh.size:
        pos = new_index[fresh]
        d[pos] = a.gather(fresh, fresh).astype(band_dtype)
        # sub/superdiagonal entries exist exactly between consecutive
        # positions of the same path (those pairs are the forest edges)
        has_prev = (pos > 0) & (
            paths.path_id[perm[np.maximum(pos - 1, 0)]] == paths.path_id[fresh]
        )
        sub = pos[has_prev]
        dl[sub] = a.gather(perm[sub], perm[sub - 1]).astype(band_dtype)
        has_next = (pos < n - 1) & (
            paths.path_id[perm[np.minimum(pos + 1, n - 1)]] == paths.path_id[fresh]
        )
        sup = pos[has_next]
        du[sup] = a.gather(perm[sup], perm[sup + 1]).astype(band_dtype)
    return TridiagonalSystem(dl=dl, d=d, du=du)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeltaStats:
    """Warm-state reuse accounting of one :func:`apply_edits` call."""

    n_edits: int
    touched_vertices: int
    #: Vertices of the invalidation ball ``ball(T, 2R+1)`` the factor re-ran on.
    region_vertices: int
    #: Vertices whose factor row was replaced from the sub-run (``ball(T, R)``).
    core_vertices: int
    #: Vertices whose confirmed partners actually changed vs the previous factor.
    changed_vertices: int
    #: Vertices re-walked by the localized rescan (affected components).
    rescanned_vertices: int
    affected_components: int
    #: Scratch-device launches of the frontier-local recompute, fused into
    #: the single ``delta.factor`` launch on the caller's device.
    fused_launches: int
    total_vertices: int
    #: ``None`` for a true delta run, else why the engine fell back
    #: (``"sharded"``, ``"region"``) or ``"empty"`` for a no-op batch.
    fallback: str | None = None

    @property
    def reused_fraction(self) -> float:
        """Fraction of vertices whose factor state was reused verbatim."""
        if self.total_vertices == 0:
            return 1.0
        return 1.0 - self.region_vertices / self.total_vertices

    def to_dict(self) -> dict:
        """JSON form (CLI output and the serve ``update`` op's response)."""
        return {
            "n_edits": self.n_edits,
            "touched_vertices": self.touched_vertices,
            "region_vertices": self.region_vertices,
            "core_vertices": self.core_vertices,
            "changed_vertices": self.changed_vertices,
            "rescanned_vertices": self.rescanned_vertices,
            "affected_components": self.affected_components,
            "fused_launches": self.fused_launches,
            "total_vertices": self.total_vertices,
            "reused_fraction": self.reused_fraction,
            "fallback": self.fallback,
        }


@dataclass(frozen=True)
class DeltaResult:
    """Outcome of :func:`apply_edits`.

    ``result`` is a full :class:`~repro.core.pipeline.LinearForestResult` on
    the edited matrix — bit-identical to a from-scratch run, except that the
    factor round bookkeeping (``frontier_history`` and friends) describes the
    frontier-local recompute rather than a global one.  ``matrix`` is the
    edited original matrix: feed it (with this ``result``) to the next
    :func:`apply_edits` to chain updates.
    """

    result: LinearForestResult
    matrix: CSRMatrix
    stats: DeltaStats

    @property
    def coverage(self) -> float:
        return self.result.coverage


def _meter(kl: KernelLaunch, *, read: int = 0, written: int = 0) -> None:
    """Add raw byte counts to a launch handle (fused-kernel accounting)."""
    if kl.enabled:
        kl.bytes_read += int(read)
        kl.bytes_written += int(written)


def apply_edits(
    previous: LinearForestResult,
    edits: EditBatch,
    a: CSRMatrix,
    config: ParallelFactorConfig | None = None,
    *,
    device: Device | None = None,
    devices: int | None = None,
    compaction=None,
    max_region_fraction: float = 0.5,
) -> DeltaResult:
    """Update a previous extraction for an edit batch, reusing warm state.

    Parameters
    ----------
    previous:
        The result of :func:`~repro.core.pipeline.extract_linear_forest` (or
        of a previous :func:`apply_edits`) on ``a`` — with the *same*
        ``config``.
    edits:
        The edge edits to apply (see :class:`EditBatch`).
    a:
        The original matrix ``previous`` was extracted from (the pipeline
        result does not retain it; extraction coefficients come from the
        original matrix, not the prepared graph).
    config:
        Algorithm parameters; must match the previous run (default: the
        paper's defaults with n = 2).
    device / devices:
        As in :func:`~repro.core.pipeline.extract_linear_forest`.
        ``devices > 1`` (or a :class:`~repro.device.device.DeviceGroup`)
        falls back to a full sharded re-run with a
        :class:`DeltaFallbackWarning` — the halo protocol has no incremental
        path yet.
    compaction:
        Frontier-compaction policy for the frontier-local recompute; results
        are bit-identical under every policy.
    max_region_fraction:
        When the invalidation ball covers more than this fraction of the
        vertices, the delta recompute stops paying for itself and the engine
        falls back to a full re-run (``stats.fallback == "region"``).

    Returns a :class:`DeltaResult`; an empty batch returns the previous
    result unchanged with **zero** device launches.
    """
    config = config or ParallelFactorConfig(n=2)
    if config.n != 2:
        raise ConfigError(f"linear-forest extraction requires n=2, got n={config.n}")
    if previous.graph.n_rows != a.n_rows:
        raise ShapeError(
            f"previous result covers {previous.graph.n_rows} vertices, "
            f"matrix has {a.n_rows}"
        )
    metrics = current_metrics()

    if len(edits) == 0:
        if metrics is not None:
            metrics.counter("delta.runs").inc()
            metrics.counter("delta.empty_batches").inc()
        return DeltaResult(
            result=previous,
            matrix=a,
            stats=DeltaStats(
                n_edits=0, touched_vertices=0, region_vertices=0,
                core_vertices=0, changed_vertices=0, rescanned_vertices=0,
                affected_components=0, fused_launches=0,
                total_vertices=a.n_rows, fallback="empty",
            ),
        )

    a_new = apply_edits_to_matrix(a, edits)

    # device resolution mirrors extract_linear_forest: a group (or an
    # ambient/explicit device count > 1) means a sharded run — which the
    # delta engine cannot splice yet, so it degrades to a full re-run
    if isinstance(device, DeviceGroup):
        return _fallback(
            edits, a_new, config, "sharded", warn=True,
            device=device, devices=devices, compaction=compaction,
        )
    if devices is not None or device is None:
        from .sharded import resolve_devices

        devices = resolve_devices(devices)
    if devices is not None and devices > 1:
        if device is not None:
            raise ConfigError(
                "pass a DeviceGroup (or no device) together with devices=; "
                "a single Device cannot host a sharded run"
            )
        return _fallback(
            edits, a_new, config, "sharded", warn=True,
            devices=devices, compaction=compaction,
        )

    device = device or default_device()
    timings = TimingBreakdown()
    radius = invalidation_radius(config)

    with trace_span(
        "apply-edits",
        category="run",
        n_vertices=a.n_rows,
        n_edits=len(edits),
        radius=radius,
        dtype=str(a_new.data.dtype),
    ) as root:
        with timings.phase(PHASE_FACTOR):
            graph_new = prepare_graph(a_new)
            from .frontier import resolve_compaction

            policy = resolve_compaction(compaction, graph=graph_new)
            if root is not None:
                root.attributes["compaction"] = policy.name

            touched = edits.touched
            with trace_span("delta.frontier", category="stage") as span, device.launch(
                "delta.frontier", reads=(touched,)
            ) as kl:
                dist = _ball(graph_new, touched, 2 * radius + 1)
                members = np.flatnonzero(dist <= 2 * radius + 1)
                core = np.flatnonzero(dist <= radius)
                # the BFS streams the region's adjacency rows plus the
                # distance updates
                _meter(
                    kl,
                    read=int(graph_new.row_lengths[members].sum()) * 8
                    + members.size * 8,
                    written=members.size * 8,
                )
                if span is not None:
                    span.attributes.update(region=int(members.size), core=int(core.size))

            if members.size > max_region_fraction * a.n_rows:
                if root is not None:
                    root.attributes["fallback"] = "region"
                return _fallback(
                    edits, a_new, config, "region",
                    device=device, compaction=policy,
                )

            # frontier-local factor recompute on a scratch device, fused into
            # one launch on the caller's device: bytes are the scratch
            # device's measured traffic, the region's round loop amortizes
            # into a single persistent-kernel launch
            # the private tracer keeps the scratch launches out of the
            # ambient span tree: callers see exactly the four fused
            # delta.* kernel spans, with the scratch traffic as their bytes
            sub_device = Device("delta-scratch", tracer=Tracer("delta-scratch"))
            sub_graph, local = _induced_subgraph(graph_new, members)
            with trace_span(
                "delta.factor", category="stage", region=int(members.size)
            ), device.launch("delta.factor") as kl:
                sub_result = parallel_factor(
                    sub_graph, config, device=sub_device,
                    compaction=policy, charge_ids=members,
                )
                raw = previous.factor_result.factor.neighbors.copy()
                sub_rows = sub_result.factor.neighbors[local[core]]
                raw[core] = np.where(
                    sub_rows == NO_PARTNER, NO_PARTNER, members[np.maximum(sub_rows, 0)]
                )
                changed = core[
                    (raw[core] != previous.factor_result.factor.neighbors[core]).any(
                        axis=1
                    )
                ]
                _meter(
                    kl,
                    read=sum(k.bytes_read for k in sub_device.kernels)
                    + core.size * 16,
                    written=sum(k.bytes_written for k in sub_device.kernels)
                    + core.size * 16,
                )
                kl.annotate(fused_launches=sub_device.launch_count)
                kl.telemetry(
                    active_lanes=int(sub_graph.nnz), total_lanes=int(graph_new.nnz)
                )
            raw_factor = Factor(raw)

        with timings.phase(PHASE_SCANS):
            # components to re-walk: everything sharing an old path with a
            # touched or changed vertex.  The set is closed under the *new*
            # factor too: a new factor edge only ever joins two changed rows.
            mark = np.union1d(touched, changed)
            affected_pids = np.unique(previous.paths.path_id[mark])
            region_mask = np.isin(previous.paths.path_id, affected_pids)
            n_rescanned = int(region_mask.sum())
            with trace_span(
                "delta.rescan", category="stage", rescanned=n_rescanned
            ), device.launch("delta.rescan") as kl:
                path_id, position, cycle_mask, removed_u, removed_v, n_comp = (
                    _rescan_region(raw_factor, graph_new, region_mask, previous)
                )
                # the walk streams each member's partner pair and writes its
                # (path id, position, cycle flag) triple
                _meter(kl, read=n_rescanned * 16, written=n_rescanned * 17)
                kl.telemetry(active_lanes=2 * n_rescanned, total_lanes=2 * a.n_rows)
            forest = raw_factor.remove_edges(removed_u, removed_v)
            paths = PathInfo(path_id=path_id, position=position)
            perm = forest_permutation(paths)

        with timings.phase(PHASE_EXTRACT):
            with trace_span("delta.extract", category="stage"), device.launch(
                "delta.extract"
            ) as kl:
                tridiagonal = _splice_bands(a_new, previous, paths, perm, region_mask)
                item = tridiagonal.d.dtype.itemsize
                _meter(
                    kl,
                    read=3 * (a.n_rows - n_rescanned) * item  # old band values
                    + n_rescanned * (3 * item + 16),  # fresh gathers
                    written=3 * a.n_rows * item,
                )

        cov = coverage_of(a_new, forest)
        if root is not None:
            root.attributes.update(
                coverage=cov,
                region=int(members.size),
                changed=int(changed.size),
                rescanned=n_rescanned,
            )

    stats = DeltaStats(
        n_edits=len(edits),
        touched_vertices=int(touched.size),
        region_vertices=int(members.size),
        core_vertices=int(core.size),
        changed_vertices=int(changed.size),
        rescanned_vertices=n_rescanned,
        affected_components=n_comp,
        fused_launches=int(sub_device.launch_count),
        total_vertices=a.n_rows,
    )
    if metrics is not None:
        metrics.counter("delta.runs").inc()
        metrics.counter("delta.edits").inc(len(edits))
        metrics.counter("delta.region_vertices").inc(int(members.size))
        metrics.counter("delta.changed_vertices").inc(int(changed.size))
        metrics.counter("delta.rescanned_vertices").inc(n_rescanned)
        metrics.counter("delta.reused_vertices").inc(int(a.n_rows - members.size))

    factor_result = ParallelFactorResult(
        factor=raw_factor,
        iterations=sub_result.iterations,
        m_max=sub_result.m_max,
        converged=sub_result.converged,
        coverage_history=[],
        proposals_per_iteration=list(sub_result.proposals_per_iteration),
        frontier_history=list(sub_result.frontier_history),
        compaction_decisions=list(sub_result.compaction_decisions),
        gathered_elements=sub_result.gathered_elements,
    )
    result = LinearForestResult(
        graph=graph_new,
        factor_result=factor_result,
        broken=BrokenCycles(
            forest=forest, removed_u=removed_u, removed_v=removed_v,
            cycle_mask=cycle_mask,
        ),
        paths=paths,
        perm=perm,
        tridiagonal=tridiagonal,
        coverage=cov,
        timings=timings,
    )
    return DeltaResult(result=result, matrix=a_new, stats=stats)


def _fallback(
    edits: EditBatch,
    a_new: CSRMatrix,
    config: ParallelFactorConfig,
    reason: str,
    *,
    warn: bool = False,
    device=None,
    devices=None,
    compaction=None,
) -> DeltaResult:
    """Full from-scratch re-run on the edited matrix (correct, not warm)."""
    if warn:
        warnings.warn(
            "apply_edits on a sharded device group falls back to a full "
            "re-run; the halo protocol has no incremental path yet",
            DeltaFallbackWarning,
            stacklevel=3,
        )
    metrics = current_metrics()
    if metrics is not None:
        metrics.counter("delta.runs").inc()
        metrics.counter("delta.fallbacks").inc()
        metrics.counter(f"delta.fallbacks[{reason}]").inc()
    result = extract_linear_forest(
        a_new, config, device=device, devices=devices, compaction=compaction
    )
    return DeltaResult(
        result=result,
        matrix=a_new,
        stats=DeltaStats(
            n_edits=len(edits),
            touched_vertices=int(edits.touched.size),
            region_vertices=a_new.n_rows,
            core_vertices=a_new.n_rows,
            changed_vertices=0,
            rescanned_vertices=a_new.n_rows,
            affected_components=0,
            fused_launches=0,
            total_vertices=a_new.n_rows,
            fallback=reason,
        ),
    )
