"""Ablation variants of the paper's design choices (DESIGN.md D2-D5).

Each variant here is a *road not taken* that the paper argues against; the
ablation benchmarks quantify the claims:

* :func:`merged_linear_forest` — **D3**: Section 3.3 notes that the cycle
  scan and the position scan *"can be merged by searching for the weakest
  edge and the distance to it, but in practice this incurs more data movement
  and longer running times"*.  This is that merged single-scan algorithm: one
  bidirectional scan carrying six payload fields (position, weakest-edge
  triple, distance to and near endpoint of the weakest edge) instead of two
  scans with three and one.
* :func:`propose_accept_factor` — **D2**: the MST-style relaxation in which
  confirmations need not be mutual: targets *accept* the strongest incoming
  propositions up to their capacity.  More edges per round, but the
  acceptance step is an extra scatter/reduce with irregular contention.
* :func:`propose_edges_segmented_sort` — **D4**: the proposition implemented
  with a full segmented sort of every row (the CUB-primitive formulation the
  paper measured to be ~an order of magnitude slower) instead of the top-n
  accumulator.
* :class:`UnsafeInPlaceScan` — the "no ping-pong" ablation: Section 4.2
  explains double buffering is required because *"other threads might read a
  value of a neighboring vertex ... after the update ... has already
  overwritten the original input value"*.  This variant shares one buffer and
  demonstrates the resulting corruption.
* :class:`ReferenceScan` — the paper's *exhaustive* scan engine: always
  ⌈log₂N⌉ launches, full ping-pong buffer copies every step, no frontier
  compaction.  It is the oracle the convergence-aware
  :class:`~repro.core.scan.BidirectionalScan` is property-tested against
  (results must be bit-identical) and the traffic baseline of the
  convergence benchmarks.
* :func:`reference_parallel_factor` — the paper-exact Algorithm 2 round
  loop: every round launches charge/propose/mutualize over the *full*
  nonzero array (:func:`~repro.core.factor.propose_edges` re-masks all nnz
  entries each call), with no frontier compaction and no empty-frontier
  early exit.  The oracle and traffic baseline for the convergence-aware
  :class:`~repro.core.proposer.PropositionEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import INDEX_DTYPE, VALUE_DTYPE
from ..device.buffers import PingPong
from ..errors import ScanError
from ..sparse.csr import CSRMatrix
from .charge import vertex_charges
from .factor import ParallelFactorConfig, ParallelFactorResult
from .paths import PathInfo
from .scan import (
    BidirectionalScan,
    Payload,
    ScanResult,
    decode_end,
    is_path_end,
    operator_label,
    scan_steps,
)
from .structures import NO_PARTNER, Factor

__all__ = [
    "MergedForestResult",
    "MergedOperator",
    "ReferenceScan",
    "UnsafeInPlaceScan",
    "merged_linear_forest",
    "propose_accept_factor",
    "propose_edges_segmented_sort",
    "reference_parallel_factor",
]


class ReferenceScan(BidirectionalScan):
    """The exhaustive Section-4.2 scan: every step launches, full copies.

    This preserves the pre-compaction engine exactly: ⌈log₂N⌉ launches
    regardless of convergence, and each launch copies the complete ``(N, 2)``
    ping-pong buffers of ``q`` and every payload array.  The convergence
    tests assert :class:`~repro.core.scan.BidirectionalScan` is bit-identical
    to this engine on every topology; the convergence benchmarks use it as
    the launch/traffic baseline.
    """

    def run(self, operator, graph=None, *, steps=None):
        n_vertices = self.factor.n_vertices
        n_steps = scan_steps(n_vertices) if steps is None else steps
        ids = self._ids
        label = operator_label(operator)
        q_pp = PingPong(self._q0)
        payload0 = operator.init(self.factor, graph)
        payload_pp = {name: PingPong(arr) for name, arr in payload0.items()}
        launches = 0
        active_history: list[int] = []

        for step in range(n_steps):
            q_back = q_pp.back
            p_back = {name: pp.back for name, pp in payload_pp.items()}
            q_front = q_pp.front
            p_front = {name: pp.front for name, pp in payload_pp.items()}
            reads = [q_back, *p_back.values()]
            writes = [q_front, *p_front.values()]
            n_active = int((q_back >= 0).sum())
            active_history.append(n_active)
            with self.device.launch(
                f"bidirectional-scan[{label}|step={step}]",
                reads=reads,
                writes=writes,
                active_lanes=n_active,
                total_lanes=2 * n_vertices,
            ):
                q_front[...] = q_back
                for name in p_front:
                    p_front[name][...] = p_back[name]
                for lane in (0, 1):
                    w = q_back[:, lane]
                    active = ~is_path_end(w)
                    idx = np.flatnonzero(active)
                    if idx.size == 0:
                        continue
                    far = w[idx]
                    far_q = q_back[far]  # (m, 2) — the neighbour's snapshot
                    far_p = {name: p_back[name][far] for name in p_back}
                    for j in (0, 1):
                        extend = far_q[:, j] != ids[idx]
                        sub = idx[extend]
                        if sub.size == 0:
                            continue
                        current = {name: p_front[name][sub, lane] for name in p_front}
                        contribution = {name: far_p[name][extend, j] for name in far_p}
                        merged = operator.combine(current, contribution)
                        for name in p_front:
                            p_front[name][sub, lane] = merged[name]
                        q_front[sub, lane] = far_q[extend, j]
            launches += 1
            q_pp.swap()
            for pp in payload_pp.values():
                pp.swap()

        return ScanResult(
            q=q_pp.back.copy(),
            payload={name: pp.back.copy() for name, pp in payload_pp.items()},
            steps=n_steps,
            launches=launches,
            active_per_launch=tuple(active_history),
        )


# ---------------------------------------------------------------------------
# paper-exact Algorithm 2 rounds (no frontier compaction)
# ---------------------------------------------------------------------------


def reference_parallel_factor(
    graph: CSRMatrix,
    config: ParallelFactorConfig | None = None,
    *,
    device=None,
    coverage_matrix: CSRMatrix | None = None,
) -> ParallelFactorResult:
    """The paper-exact Algorithm 2 loop: full-nnz rounds, no early exit.

    Every iteration launches charge (when scheduled), propose and mutualize
    kernels whose reads cover the complete CSR arrays — the proposition
    re-masks all nonzeros each round, exactly as the paper's kernels do.
    The only exit before ``M`` is the paper's own maximality test (zero
    propositions on an un-charged round).  Results are bit-identical to
    :func:`repro.core.factor.parallel_factor`, which this function serves as
    oracle and launch/traffic baseline for.
    """
    from ..device.device import default_device
    from .coverage import coverage as coverage_of
    from .factor import _confirm_mutual, propose_edges

    config = config or ParallelFactorConfig()
    device = device or default_device()
    n_vertices = graph.n_rows
    n = config.n

    confirmed = np.full((n_vertices, n), NO_PARTNER, dtype=INDEX_DTYPE)
    coverage_history: list[float] = []
    proposals_history: list[int] = []
    m_max: int | None = None
    converged = False
    iterations = 0

    for k in range(config.max_iterations):
        charging = config.charging_enabled(k)
        charges = None
        if charging:
            with device.launch(f"charge[k={k}]", writes=()):
                charges = vertex_charges(n_vertices, k, p=config.p, seed=config.seed)

        with device.launch(
            f"propose[k={k}]",
            reads=(graph.data, graph.indices, graph.indptr, confirmed),
        ) as kl:
            prop_cols, prop_vals, prop_counts = propose_edges(
                graph, confirmed, n, charges=charges
            )
            if charges is not None:
                kl.reads(charges)
            kl.writes(prop_cols, prop_vals, prop_counts)
        total_proposals = int(prop_counts.sum())
        proposals_history.append(total_proposals)
        iterations = k + 1

        if total_proposals == 0 and not charging:
            m_max = k + 1
            converged = True
            if coverage_matrix is not None:
                coverage_history.append(
                    coverage_of(coverage_matrix, Factor(confirmed))
                )
            break

        degree = (confirmed != NO_PARTNER).sum(axis=1).astype(INDEX_DTYPE)
        with device.launch(
            f"mutualize[k={k}]", reads=(prop_cols,), writes=(confirmed,)
        ):
            _confirm_mutual(confirmed, degree, prop_cols)

        if coverage_matrix is not None:
            coverage_history.append(coverage_of(coverage_matrix, Factor(confirmed)))

    return ParallelFactorResult(
        factor=Factor(confirmed),
        iterations=iterations,
        m_max=m_max,
        converged=converged,
        coverage_history=coverage_history,
        proposals_per_iteration=proposals_history,
    )


# ---------------------------------------------------------------------------
# D3: merged cycle + position scan
# ---------------------------------------------------------------------------


class MergedOperator:
    """Position payload fused with weakest-edge tracking.

    Per lane: ``r`` (the stride/position accumulator), the weakest-edge
    triple ``(w, u, v)``, the distance ``dist`` from this vertex to the near
    endpoint of that edge, and the near endpoint ``near`` itself.  The merge
    rule keeps the *first* (nearest) occurrence of the minimum so that
    ``dist`` stays exact even when pointer jumping wraps around a cycle.
    """

    _INF = np.iinfo(INDEX_DTYPE).max

    def init(self, factor: Factor, graph: CSRMatrix | None) -> Payload:
        if graph is None:
            raise ScanError("MergedOperator requires the weighted graph")
        n_vertices = factor.n_vertices
        ids = np.arange(n_vertices, dtype=INDEX_DTYPE)
        payload = {
            "r": np.ones((n_vertices, 2), dtype=INDEX_DTYPE),
            "w": np.full((n_vertices, 2), np.inf, dtype=VALUE_DTYPE),
            "u": np.full((n_vertices, 2), self._INF, dtype=INDEX_DTYPE),
            "v": np.full((n_vertices, 2), self._INF, dtype=INDEX_DTYPE),
            "dist": np.zeros((n_vertices, 2), dtype=INDEX_DTYPE),
            "near": np.full((n_vertices, 2), self._INF, dtype=INDEX_DTYPE),
        }
        for lane in (0, 1):
            nbr = factor.neighbors[:, lane] if lane < factor.n else np.full(
                n_vertices, NO_PARTNER, dtype=INDEX_DTYPE
            )
            valid = nbr != NO_PARTNER
            vv = ids[valid]
            nn = nbr[valid]
            payload["w"][valid, lane] = np.abs(graph.gather(vv, nn))
            payload["u"][valid, lane] = np.minimum(vv, nn)
            payload["v"][valid, lane] = np.maximum(vv, nn)
            payload["dist"][valid, lane] = 0
            payload["near"][valid, lane] = vv
        return payload

    def combine(self, current: Payload, far: Payload) -> Payload:
        strictly_less = far["w"] < current["w"]
        tie_w = far["w"] == current["w"]
        strictly_less |= tie_w & (far["u"] < current["u"])
        strictly_less |= (
            tie_w & (far["u"] == current["u"]) & (far["v"] < current["v"])
        )
        take_far = strictly_less  # ties keep the nearer (current) occurrence
        out = {
            "r": current["r"] + far["r"],
            "w": np.where(take_far, far["w"], current["w"]),
            "u": np.where(take_far, far["u"], current["u"]),
            "v": np.where(take_far, far["v"], current["v"]),
            # the far segment starts current["r"] edges away
            "dist": np.where(take_far, current["r"] + far["dist"], current["dist"]),
            "near": np.where(take_far, far["near"], current["near"]),
        }
        return out


@dataclass(frozen=True)
class MergedForestResult:
    forest: Factor
    paths: PathInfo
    removed_u: np.ndarray
    removed_v: np.ndarray
    cycle_mask: np.ndarray


def merged_linear_forest(
    factor: Factor,
    graph: CSRMatrix,
    *,
    device=None,
) -> MergedForestResult:
    """Cycle breaking *and* path identification from a single scan (D3).

    Path vertices take their ids/positions from the clamped lanes as in
    Algorithm 3.  Cycle vertices reconstruct them from the fused payload:
    the cycle is broken at its weakest edge ``(u*, v*)``; the new path id is
    ``min(u*, v*)`` and the position of a vertex is ``dist + 1`` along the
    lane whose near endpoint equals that minimum.
    """
    scan = BidirectionalScan(factor, device=device)
    result = scan.run(MergedOperator(), graph)
    n = factor.n_vertices
    rows = np.arange(n, dtype=INDEX_DTYPE)
    cycle_mask = result.cycle_mask

    # --- path part: exactly Algorithm 3's epilogue ------------------------
    q = result.q
    r = result.payload["r"]
    path_id = np.zeros(n, dtype=INDEX_DTYPE)
    position = np.zeros(n, dtype=INDEX_DTYPE)
    path_vertices = ~cycle_mask
    ends = decode_end(np.where(q < 0, q, -1))  # garbage on cycle lanes, masked
    lane = np.argmin(np.where(q < 0, ends, np.iinfo(INDEX_DTYPE).max), axis=1)
    path_id[path_vertices] = ends[rows, lane][path_vertices]
    position[path_vertices] = r[rows, lane][path_vertices]

    # --- cycle part --------------------------------------------------------
    removed_u = np.empty(0, dtype=INDEX_DTYPE)
    removed_v = np.empty(0, dtype=INDEX_DTYPE)
    forest = factor
    if bool(cycle_mask.any()):
        w = result.payload["w"]
        u = result.payload["u"]
        v = result.payload["v"]
        dist = result.payload["dist"]
        near = result.payload["near"]
        lane1_smaller = (w[:, 1] < w[:, 0]) | (
            (w[:, 1] == w[:, 0])
            & ((u[:, 1] < u[:, 0]) | ((u[:, 1] == u[:, 0]) & (v[:, 1] < v[:, 0])))
        )
        min_lane = lane1_smaller.astype(INDEX_DTYPE)
        cyc = np.flatnonzero(cycle_mask)
        min_u = u[cyc, min_lane[cyc]]
        min_v = v[cyc, min_lane[cyc]]
        pairs = np.unique(np.stack([min_u, min_v], axis=1), axis=0)
        removed_u, removed_v = pairs[:, 0], pairs[:, 1]
        forest = factor.remove_edges(removed_u, removed_v)

        # Reconstruct positions on the broken cycle.  When pointer jumping
        # wrapped (cycle length not a power of two) both lanes covered the
        # whole cycle, found the same global minimum and their near endpoints
        # are its two endpoints — pick the lane pointing at min(u*, v*).
        # Power-of-two cycles stall at stride L/2: each lane covers one half,
        # only one holds the global minimum, and its near endpoint may be the
        # *max* endpoint; then position = L - dist with L = r₀ + r₁ (exact in
        # the stall case).
        new_id = np.minimum(min_u, min_v)
        path_id[cyc] = new_id
        k_idx = np.arange(cyc.size)
        lane_near = near[cyc]  # (k, 2)
        lane_dist = dist[cyc]
        has_min_lane = (u[cyc] == min_u[:, None]) & (v[cyc] == min_v[:, None]) & (
            w[cyc] == w[cyc, min_lane[cyc]][:, None]
        )
        toward = (lane_near == new_id[:, None]) & has_min_lane
        direct = toward.any(axis=1)
        sel_lane = toward.argmax(axis=1)
        position[cyc[direct]] = lane_dist[k_idx[direct], sel_lane[direct]] + 1
        # fallback: the global-min lane points at the max endpoint
        fb = ~direct
        if bool(fb.any()):
            cycle_len = result.payload["r"][cyc][:, 0] + result.payload["r"][cyc][:, 1]
            fb_lane = min_lane[cyc][fb]
            position[cyc[fb]] = cycle_len[fb] - lane_dist[k_idx[fb], fb_lane]

    return MergedForestResult(
        forest=forest,
        paths=PathInfo(path_id=path_id, position=position),
        removed_u=removed_u,
        removed_v=removed_v,
        cycle_mask=cycle_mask,
    )


# ---------------------------------------------------------------------------
# D2: non-mutual propose/accept rounds
# ---------------------------------------------------------------------------


def propose_accept_factor(
    graph: CSRMatrix,
    config: ParallelFactorConfig | None = None,
) -> ParallelFactorResult:
    """MST-style variant: targets accept the strongest incoming proposals.

    Instead of requiring mutual propositions (Alg. 2 line 27), every vertex
    accepts incoming proposals in weight order up to its remaining capacity.
    This confirms more edges per round but needs an extra segmented reduction
    over the *incoming* side and a conflict-resolution pass.
    """
    config = config or ParallelFactorConfig()
    n = config.n
    n_vertices = graph.n_rows
    confirmed = np.full((n_vertices, n), NO_PARTNER, dtype=INDEX_DTYPE)
    proposals_history: list[int] = []
    m_max = None
    converged = False
    iterations = 0

    from .factor import propose_edges

    for k in range(config.max_iterations):
        charging = config.charging_enabled(k)
        charges = (
            vertex_charges(n_vertices, k, p=config.p, seed=config.seed)
            if charging
            else None
        )
        prop_cols, prop_vals, prop_counts = propose_edges(
            graph, confirmed, n, charges=charges
        )
        total = int(prop_counts.sum())
        proposals_history.append(total)
        iterations = k + 1
        if total == 0 and not charging:
            m_max = k + 1
            converged = True
            break

        # flatten directed proposals p -> t
        valid = prop_cols != NO_PARTNER
        src, slot = np.nonzero(valid)
        tgt = prop_cols[src, slot]
        wgt = prop_vals[src, slot]
        # dedupe mutual pairs: keep one representative per undirected edge
        lo = np.minimum(src, tgt)
        hi = np.maximum(src, tgt)
        _, first = np.unique(lo * n_vertices + hi, return_index=True)
        src, tgt, wgt = src[first], tgt[first], wgt[first]

        # greedy acceptance in global weight order (deterministic sequential
        # tie-breaking; the GPU version would run rounds of atomic claims)
        order = np.lexsort((hi[first], lo[first], -wgt))
        degree = (confirmed != NO_PARTNER).sum(axis=1)
        deg = degree.copy()
        add_u: list[int] = []
        add_v: list[int] = []
        for i in order.tolist():
            a, b = int(src[i]), int(tgt[i])
            if deg[a] < n and deg[b] < n:
                add_u.append(a)
                add_v.append(b)
                deg[a] += 1
                deg[b] += 1
        for a, b in zip(add_u, add_v):
            confirmed[a, degree[a]] = b
            confirmed[b, degree[b]] = a
            degree[a] += 1
            degree[b] += 1

    return ParallelFactorResult(
        factor=Factor(confirmed),
        iterations=iterations,
        m_max=m_max,
        converged=converged,
        proposals_per_iteration=proposals_history,
    )


# ---------------------------------------------------------------------------
# D4: proposition via full segmented sort
# ---------------------------------------------------------------------------


def propose_edges_segmented_sort(
    graph: CSRMatrix,
    confirmed: np.ndarray,
    n: int,
    *,
    charges: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Proposition by sorting *every* row completely, then taking the first
    eligible entries — the segmented-sort formulation the paper found ~10x
    slower than the fused top-n accumulator.  Results are identical to
    :func:`repro.core.factor.propose_edges`."""
    n_vertices = graph.n_rows
    rows_nnz = graph.nnz_rows
    cols = graph.indices
    degree = (confirmed != NO_PARTNER).sum(axis=1).astype(INDEX_DTYPE)
    # full segmented sort of all rows by descending weight (eligible or not)
    order = np.lexsort((cols, -graph.data, rows_nnz))
    sorted_rows = rows_nnz[order]
    sorted_cols = cols[order]
    sorted_vals = graph.data[order]
    # eligibility evaluated after the sort (the extra work of this variant)
    eligible = degree[sorted_cols] < n
    eligible &= sorted_cols != sorted_rows
    if charges is not None:
        eligible &= charges[sorted_rows] != charges[sorted_cols]
    eligible &= ~(confirmed[sorted_rows] == sorted_cols[:, None]).any(axis=1)

    capacity = np.minimum(n - degree, n)
    # rank among eligible entries of the same row
    elig_int = eligible.astype(INDEX_DTYPE)
    cum = np.cumsum(elig_int)
    row_starts = graph.indptr[:-1]
    base = np.zeros(n_vertices, dtype=INDEX_DTYPE)
    non_empty = graph.row_lengths > 0
    base[non_empty] = cum[row_starts[non_empty]] - elig_int[row_starts[non_empty]]
    rank = cum - 1 - base[sorted_rows]
    selected = eligible & (rank < capacity[sorted_rows])

    prop_cols = np.full((n_vertices, n), NO_PARTNER, dtype=INDEX_DTYPE)
    prop_vals = np.zeros((n_vertices, n), dtype=VALUE_DTYPE)
    counts = np.zeros(n_vertices, dtype=INDEX_DTYPE)
    sel = np.flatnonzero(selected)
    prop_cols[sorted_rows[sel], rank[sel]] = sorted_cols[sel]
    prop_vals[sorted_rows[sel], rank[sel]] = sorted_vals[sel]
    np.add.at(counts, sorted_rows[sel], 1)
    return prop_cols, prop_vals, counts


# ---------------------------------------------------------------------------
# ping-pong necessity: the unsafe in-place scan
# ---------------------------------------------------------------------------


class UnsafeInPlaceScan(BidirectionalScan):
    """Bidirectional scan *without* double buffering.

    Kernels read and write the same buffer, so a "thread" may observe a
    neighbour's already-updated tuple — exactly the race Section 4.2's
    ping-pong buffers prevent.  On the simulated device the corruption is
    deterministic (vertices update in id order), which makes it easy to
    demonstrate: positions become wrong on most multi-vertex paths.
    """

    def run(self, operator, graph=None, *, steps=None):
        from .scan import ScanResult, scan_steps

        n_vertices = self.factor.n_vertices
        n_steps = scan_steps(n_vertices) if steps is None else steps
        ids = self._ids
        q = self._q0.copy()
        payload = operator.init(self.factor, graph)
        payload = {name: arr.copy() for name, arr in payload.items()}

        for _ in range(n_steps):
            for lane in (0, 1):
                w = q[:, lane]
                active = ~is_path_end(w)
                idx = np.flatnonzero(active)
                if idx.size == 0:
                    continue
                far = w[idx]
                far_q = q[far]  # RACE: may already contain this step's writes
                far_p = {name: payload[name][far] for name in payload}
                for j in (0, 1):
                    extend = far_q[:, j] != ids[idx]
                    sub = idx[extend]
                    if sub.size == 0:
                        continue
                    current = {name: payload[name][sub, lane] for name in payload}
                    contribution = {name: far_p[name][extend, j] for name in far_p}
                    merged = operator.combine(current, contribution)
                    for name in payload:
                        payload[name][sub, lane] = merged[name]
                    q[sub, lane] = far_q[extend, j]

        return ScanResult(q=q.copy(), payload=payload, steps=n_steps, launches=n_steps)
