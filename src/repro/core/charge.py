"""Vertex charging (Section 3.2 / 4.1 of the paper).

Before an edge-proposition round, every vertex is charged **positive** with
probability ``p`` or **negative** with probability ``1 - p`` and may only
propose to vertices of the opposite charge.  The charge must be a pure
function of the vertex id and the iteration index ``k`` (each simulated
thread recomputes it independently), so the paper — following Auer &
Bisseling's GPU graph matching — derives it from a part of the MD5 algorithm.

:func:`vertex_charges` reproduces that construction with a vectorized MD5
quarter-round: the nonlinear MD5 mixing function, addition of MD5 sine-table
constants, and left-rotations, applied to (vertex id, k, seed).  Only the
statistical properties matter for Algorithm 2 — determinism, an approximately
``p``-biased marginal, and decorrelation across ``k``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["vertex_charges", "charge_hash"]

# The first four entries of the MD5 sine table T[i] = floor(2^32 |sin(i+1)|).
_MD5_T = (0xD76AA478, 0xE8C7B756, 0x242070DB, 0xC1BDCEEE)
# MD5 chaining-variable initial values.
_MD5_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)
_ROTATIONS = (7, 12, 17, 22)


def _rotl32(x: np.ndarray, r: int) -> np.ndarray:
    return (x << np.uint32(r)) | (x >> np.uint32(32 - r))


def _md5_f(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """The round-1 MD5 nonlinear function F(x,y,z) = (x & y) | (~x & z)."""
    return (x & y) | (~x & z)


def charge_hash(ids: np.ndarray, k: int, seed: int = 0) -> np.ndarray:
    """A 32-bit hash of (vertex id, iteration k, seed), MD5-round style."""
    with np.errstate(over="ignore"):
        m = np.asarray(ids, dtype=np.uint32)
        a = np.full_like(m, _MD5_INIT[0])
        b = np.full_like(m, _MD5_INIT[1])
        c = np.full_like(m, _MD5_INIT[2])
        d = np.full_like(m, _MD5_INIT[3])
        words = (
            m,
            np.uint32(k & 0xFFFFFFFF),
            np.uint32(seed & 0xFFFFFFFF),
            m ^ np.uint32((k * 0x9E3779B9) & 0xFFFFFFFF),
        )
        for i in range(4):
            a, d, c, b = (
                d,
                c,
                b,
                b + _rotl32(a + _md5_f(b, c, d) + words[i] + np.uint32(_MD5_T[i]), _ROTATIONS[i]),
            )
        return (a + b + c + d).astype(np.uint32)


def vertex_charges(
    n_vertices: int,
    k: int,
    *,
    p: float = 0.5,
    seed: int = 0,
    ids: np.ndarray | None = None,
) -> np.ndarray:
    """Charges for all vertices at iteration ``k``.

    Returns a boolean array, ``True`` = positive(+).  ``p`` is the positive
    probability; the paper uses ``p = 0.5`` (the rounded optimum from Auer &
    Bisseling's matching study).

    ``ids`` overrides the hashed vertex identity (default
    ``arange(n_vertices)``).  The batch engine passes each member graph's
    *local* ids here so that a vertex packed into a block-diagonal
    super-graph draws exactly the charge sequence it would draw solo —
    charges are the only place the pipeline consumes raw vertex ids as
    entropy rather than as structure.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if ids is None:
        ids = np.arange(n_vertices, dtype=np.uint32)
    else:
        ids = np.asarray(ids, dtype=np.uint32)
        if ids.shape != (n_vertices,):
            raise ValueError(
                f"ids must have shape ({n_vertices},), got {ids.shape}"
            )
    h = charge_hash(ids, k, seed)
    threshold = np.uint64(int(p * float(2**32)))
    return h.astype(np.uint64) < threshold
