"""Parallel [0,n]-factor computation — Algorithm 2 of the paper.

Each iteration ``k`` runs three kernel launches:

1. **charge** — assign every vertex a ± charge (skipped when
   ``k mod m == k_m``, the un-charged rounds that also host the maximality
   check).
2. **propose** — every vertex proposes up to ``n - |π(v)|`` additional edges,
   choosing its strongest eligible neighbours.  Eligible are neighbours that
   are not already full (|π'(w)| = n), not already confirmed partners, and —
   on charged rounds — of opposite charge.  This is the generalized SpMV of
   Section 4.1: the ⊗ functor computes eligibility-masked |weights| (with the
   indirect lookup into the confirmed-edges vector ``x``), the ⊕ reduction is
   the top-n accumulator of Table 1 (:func:`repro.sparse.topn.top_n_per_row`).
3. **mutualize** — keep only mutually proposed edges (Alg. 2 line 27); the
   survivors join the confirmed set.

If an un-charged round proposes nothing, the factor is maximal and the
algorithm returns ``M_max = k + 1`` (Alg. 2 lines 23-24).

:func:`parallel_factor` drives the rounds through the convergence-aware
:class:`~repro.core.proposer.PropositionEngine` (a documented deviation from
the paper, which re-masks every nonzero each round): the active edge
frontier shrinks monotonically as vertices saturate and pairs confirm, each
``propose``/``mutualize`` launch reports its frontier occupancy to the
device, and rounds whose frontier is empty never launch at all.  Results
are bit-identical to :func:`propose_edges`, the property-tested reference;
the paper-exact full-nnz round survives in :mod:`repro.core.ablations`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import INDEX_DTYPE, require
from ..device.device import Device, default_device
from ..obs import trace_span
from ..errors import FactorError, ShapeError
from ..sparse.csr import CSRMatrix
from ..sparse.topn import top_n_per_row, validate_proposition_weights
from .charge import vertex_charges
from .coverage import coverage as coverage_of
from .structures import NO_PARTNER, Factor

__all__ = [
    "ParallelFactorConfig",
    "ParallelFactorResult",
    "parallel_factor",
    "propose_edges",
]


@dataclass(frozen=True)
class ParallelFactorConfig:
    """Parameters of Algorithm 2.

    Attributes
    ----------
    n:
        Degree bound of the factor (the paper evaluates n = 1..4).
    max_iterations:
        ``M`` — the upper limit on proposition rounds.  The paper's default
        configuration is ``M = 5``.
    m, k_m:
        Charging schedule: charging is *disabled* on iterations with
        ``k mod m == k_m``.  ``(m, k_m) = (1, 0)`` disables charging entirely;
        the paper's default is ``(5, 0)``.
    p:
        Probability of a positive charge (paper: 0.5).
    seed:
        Extra entropy fed into the charge hash.
    """

    n: int = 2
    max_iterations: int = 5
    m: int = 5
    k_m: int = 0
    p: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.n >= 1, f"n must be >= 1, got {self.n}", ShapeError)
        require(self.max_iterations >= 1, "max_iterations must be >= 1", ShapeError)
        require(self.m >= 1, f"m must be >= 1, got {self.m}", ShapeError)
        require(0 <= self.k_m < self.m, f"k_m must be in [0, m), got {self.k_m}", ShapeError)

    def charging_enabled(self, k: int) -> bool:
        """Whether vertex charging is active on iteration ``k``."""
        return k % self.m != self.k_m


@dataclass
class ParallelFactorResult:
    """Outcome of :func:`parallel_factor`."""

    factor: Factor
    iterations: int
    m_max: int | None
    converged: bool
    coverage_history: list[float] = field(default_factory=list)
    proposals_per_iteration: list[int] = field(default_factory=list)
    #: Active-edge frontier size at the start of each round (one entry per
    #: executed iteration) — the convergence curve of the proposition engine.
    frontier_history: list[int] = field(default_factory=list)
    #: Per-round verdicts of the engine's compaction policy (see
    #: :mod:`repro.core.frontier`); empty for the reference loop.
    compaction_decisions: list = field(default_factory=list)
    #: Elements written by the engine's physical compaction gathers — the
    #: factor-phase gather traffic the lazy policies amortize away.
    gathered_elements: int = 0

    @property
    def coverage(self) -> float | None:
        """Final coverage, when history tracking was enabled."""
        return self.coverage_history[-1] if self.coverage_history else None

    @property
    def final_frontier_fraction(self) -> float | None:
        """Last frontier size over the initial one, or ``None`` untracked."""
        if not self.frontier_history:
            return None
        total = self.frontier_history[0]
        if total <= 0:
            return 0.0
        return self.frontier_history[-1] / total


def propose_edges(
    graph: CSRMatrix,
    confirmed: np.ndarray,
    n: int,
    *,
    charges: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One edge-proposition kernel launch (Alg. 2 lines 14-22).

    Parameters
    ----------
    graph:
        The prepared (symmetric, non-negative, zero-diagonal) adjacency A'.
    confirmed:
        ``(N, n)`` confirmed-partner array π' (``-1`` padded) — the indirect
        lookup vector ``x`` of the generalized SpMV.
    charges:
        Per-vertex charges for this round, or ``None`` on un-charged rounds.

    Returns ``(prop_cols, prop_vals, prop_counts)`` — the per-vertex proposal
    slots, their weights (written when ``n == 2`` for the later cycle scan,
    see Table 2; here always returned) and the number of proposals per vertex.
    """
    n_vertices = graph.n_rows
    if confirmed.shape != (n_vertices, n):
        raise ShapeError(f"confirmed must have shape {(n_vertices, n)}")
    validate_proposition_weights(graph.data)
    rows_nnz = graph.nnz_rows
    cols = graph.indices
    degree = (confirmed != NO_PARTNER).sum(axis=1).astype(INDEX_DTYPE)
    eligible = degree[cols] < n
    eligible &= cols != rows_nnz
    if charges is not None:
        eligible &= charges[rows_nnz] != charges[cols]
    # exclude neighbours that are already confirmed partners of the row
    eligible &= ~(confirmed[rows_nnz] == cols[:, None]).any(axis=1)
    capacity = n - degree
    return top_n_per_row(
        graph.indptr,
        cols,
        graph.data,
        n,
        eligible=eligible,
        capacity=capacity,
    )


def _confirm_mutual(
    confirmed: np.ndarray,
    degree: np.ndarray,
    prop_cols: np.ndarray,
) -> int:
    """Keep mutually proposed edges (Alg. 2 line 27); returns #new entries."""
    valid = prop_cols != NO_PARTNER
    v_idx, slots = np.nonzero(valid)
    if v_idx.size == 0:
        return 0
    w = prop_cols[v_idx, slots]
    mutual = (prop_cols[w] == v_idx[:, None]).any(axis=1)
    new_v = v_idx[mutual]
    new_w = w[mutual]
    if new_v.size == 0:
        return 0
    # new_v is sorted (row-major nonzero); occurrence rank gives the slot
    occ = np.arange(new_v.size, dtype=INDEX_DTYPE) - np.searchsorted(new_v, new_v, side="left")
    confirmed[new_v, degree[new_v] + occ] = new_w
    return int(new_v.size)


def parallel_factor(
    graph: CSRMatrix,
    config: ParallelFactorConfig | None = None,
    *,
    device: Device | None = None,
    coverage_matrix: CSRMatrix | None = None,
    compaction=None,
    charge_ids: np.ndarray | None = None,
) -> ParallelFactorResult:
    """Run Algorithm 2 on a prepared graph.

    Parameters
    ----------
    graph:
        Output of :func:`repro.sparse.build.prepare_graph` — symmetric,
        non-negative weights, empty diagonal.
    config:
        Algorithm parameters; defaults to the paper's default configuration
        (n = 2, M = 5, m = 5, k_m = 0, p = 0.5).
    device:
        Device used for kernel-launch accounting.
    coverage_matrix:
        When given, the coverage history c_π(k) is tracked against this
        (original) matrix after every iteration — this is how Table 4 reports
        c_π(5) and c_π(M_max) per configuration.
    compaction:
        Frontier-compaction policy of the proposition engine — a
        :class:`~repro.core.frontier.CompactionPolicy`, a spec string
        (``"eager"``, ``"never"``, ``"lazy[:threshold]"``, ``"adaptive"``,
        or ``"auto"`` — the :mod:`repro.tune` cache lookup keyed by the
        graph's fingerprint), or ``None`` to honour ``REPRO_COMPACTION``
        (default eager).  The factor is bit-identical under every policy;
        only traffic differs.
    charge_ids:
        Identity array fed to the charge hash instead of the global vertex
        ids (see :func:`repro.core.charge.vertex_charges`).  The batch
        engine passes member-local ids so a packed graph charges exactly
        like its members would solo.
    """
    config = config or ParallelFactorConfig()
    device = device or default_device()
    n_vertices = graph.n_rows
    n = config.n
    if graph.n_rows != graph.n_cols:
        raise ShapeError("graph adjacency must be square")
    validate_proposition_weights(graph.data)

    confirmed = np.full((n_vertices, n), NO_PARTNER, dtype=INDEX_DTYPE)
    coverage_history: list[float] = []
    proposals_history: list[int] = []
    frontier_history: list[int] = []
    m_max: int | None = None
    converged = False
    iterations = 0

    # the proposition's sort key depends only on the graph: hoist it out of
    # the rounds, and keep only the still-active edge frontier in play
    # (see repro.core.proposer for the frontier invariant)
    from .proposer import PropositionEngine

    engine = PropositionEngine(graph, n, compaction=compaction)

    with trace_span(
        "parallel-factor",
        category="stage",
        n=n,
        max_iterations=config.max_iterations,
        n_vertices=n_vertices,
        total_edges=engine.total_edges,
        compaction=engine.policy.name,
    ) as stage:
        for k in range(config.max_iterations):
            charging = config.charging_enabled(k)
            frontier_history.append(engine.frontier_size)
            iterations = k + 1

            with trace_span(
                f"factor-round[k={k}]",
                category="stage",
                k=k,
                charging=charging,
                frontier=engine.frontier_size,
            ) as round_span:
                if engine.frontier_size == 0:
                    # Every edge retired: no round can ever propose again.  The
                    # outcome of the paper's launches is fully known, so none fire.
                    proposals_history.append(0)
                    if round_span is not None:
                        round_span.attributes["proposals"] = 0
                    if not charging:
                        # |π(V)| = |π'(V)| on an un-charged round: maximal factor
                        m_max = k + 1
                        converged = True
                        if coverage_matrix is not None:
                            coverage_history.append(
                                coverage_of(coverage_matrix, Factor(confirmed))
                            )
                        break
                    if coverage_matrix is not None:
                        coverage_history.append(
                            coverage_of(coverage_matrix, Factor(confirmed))
                        )
                    continue

                charges = None
                if charging:
                    with device.launch(f"charge[k={k}]", writes=()):
                        charges = vertex_charges(
                            n_vertices, k, p=config.p, seed=config.seed,
                            ids=charge_ids,
                        )

                with device.launch(f"propose[k={k}]") as kl:
                    prop_cols, _prop_vals, prop_counts = engine.propose(
                        confirmed, charges=charges, launch=kl
                    )
                total_proposals = int(prop_counts.sum())
                proposals_history.append(total_proposals)
                if round_span is not None:
                    round_span.attributes["proposals"] = total_proposals

                if total_proposals == 0:
                    if not charging:
                        # |π(V)| = |π'(V)| on an un-charged round: maximal factor
                        m_max = k + 1
                        converged = True
                        if coverage_matrix is not None:
                            coverage_history.append(
                                coverage_of(coverage_matrix, Factor(confirmed))
                            )
                        break
                    # charge starvation: nothing to mutualize, the factor (and
                    # therefore the frontier) is unchanged — skip both launches
                    if coverage_matrix is not None:
                        coverage_history.append(
                            coverage_of(coverage_matrix, Factor(confirmed))
                        )
                    continue

                degree = (confirmed != NO_PARTNER).sum(axis=1).astype(INDEX_DTYPE)
                with device.launch(
                    f"mutualize[k={k}]", reads=(prop_cols,), writes=(confirmed,)
                ) as kl:
                    n_new = _confirm_mutual(confirmed, degree, prop_cols)
                    if n_new:
                        engine.compact(
                            confirmed,
                            launch=kl,
                            rounds_remaining=config.max_iterations - (k + 1),
                        )
                    kl.telemetry(
                        active_lanes=engine.frontier_size,
                        total_lanes=engine.total_edges,
                    )
                if round_span is not None:
                    round_span.attributes["confirmed_new"] = n_new

                if coverage_matrix is not None:
                    coverage_history.append(
                        coverage_of(coverage_matrix, Factor(confirmed))
                    )

        if stage is not None:
            stage.attributes.update(
                iterations=iterations, m_max=m_max, converged=converged
            )

    return ParallelFactorResult(
        factor=Factor(confirmed),
        iterations=iterations,
        m_max=m_max,
        converged=converged,
        coverage_history=coverage_history,
        proposals_per_iteration=proposals_history,
        frontier_history=frontier_history,
        compaction_decisions=list(engine.decisions),
        gathered_elements=engine.gathered_elements,
    )
