"""Cycle identification and weakest-edge breaking (Section 3.3, step 1).

A [0,2]-factor decomposes into disjoint paths and cycles.  To turn it into a
linear forest, every cycle is broken by removing its *weakest* edge, keeping
the factor weight ω_π as large as possible.  Both the detection (a lane that
is still positive after ⌈log₂N⌉ scan steps never reached a path end) and the
per-cycle minimum (the :class:`~repro.core.scan.MinEdgeOperator` payload) run
on the bidirectional scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.device import Device
from ..errors import ScanError
from ..sparse.csr import CSRMatrix
from .scan import BidirectionalScan, MinEdgeOperator, NullOperator
from .structures import Factor

__all__ = ["BrokenCycles", "break_cycles", "detect_cycles"]


def detect_cycles(factor: Factor, *, device: Device | None = None) -> np.ndarray:
    """Boolean mask of vertices that lie on a cycle of the [0,2]-factor."""
    scan = BidirectionalScan(factor, device=device)
    return scan.run(NullOperator()).cycle_mask


@dataclass(frozen=True)
class BrokenCycles:
    """Result of :func:`break_cycles`."""

    forest: Factor
    removed_u: np.ndarray
    removed_v: np.ndarray
    cycle_mask: np.ndarray

    @property
    def n_cycles(self) -> int:
        return int(self.removed_u.size)


def break_cycles(
    factor: Factor,
    graph: CSRMatrix,
    *,
    device: Device | None = None,
) -> BrokenCycles:
    """Remove the weakest edge of every cycle of a [0,2]-factor.

    ``graph`` supplies the edge weights (the prepared adjacency A').  All
    vertices of a cycle agree on its weakest edge because edges are ordered
    by the unique triple (|weight|, min id, max id); each cycle therefore
    loses exactly one edge, and the result is a linear forest.
    """
    scan = BidirectionalScan(factor, device=device)
    result = scan.run(MinEdgeOperator(), graph)
    cycle_mask = result.cycle_mask
    if not bool(cycle_mask.any()):
        return BrokenCycles(
            forest=factor,
            removed_u=np.empty(0, dtype=np.int64),
            removed_v=np.empty(0, dtype=np.int64),
            cycle_mask=cycle_mask,
        )
    w = result.payload["w"]
    u = result.payload["u"]
    v = result.payload["v"]
    # per cycle vertex: lexicographic min over the two lanes
    lane1_smaller = (w[:, 1] < w[:, 0]) | (
        (w[:, 1] == w[:, 0]) & ((u[:, 1] < u[:, 0]) | ((u[:, 1] == u[:, 0]) & (v[:, 1] < v[:, 0])))
    )
    lane = lane1_smaller.astype(np.int64)
    rows = np.arange(factor.n_vertices, dtype=np.int64)
    min_u = u[rows, lane]
    min_v = v[rows, lane]
    cyc = np.flatnonzero(cycle_mask)
    if bool(np.isinf(w[cyc, lane[cyc]]).any()):
        raise ScanError("cycle vertex without a resolved weakest edge")
    pairs = np.stack([min_u[cyc], min_v[cyc]], axis=1)
    pairs = np.unique(pairs, axis=0)
    removed_u = pairs[:, 0]
    removed_v = pairs[:, 1]
    forest = factor.remove_edges(removed_u, removed_v)
    return BrokenCycles(
        forest=forest, removed_u=removed_u, removed_v=removed_v, cycle_mask=cycle_mask
    )
