"""Cycle identification and weakest-edge breaking (Section 3.3, step 1).

A [0,2]-factor decomposes into disjoint paths and cycles.  To turn it into a
linear forest, every cycle is broken by removing its *weakest* edge, keeping
the factor weight ω_π as large as possible.  Both the detection (a lane that
is still positive after ⌈log₂N⌉ scan steps never reached a path end) and the
per-cycle minimum (the :class:`~repro.core.scan.MinEdgeOperator` payload) run
on the bidirectional scan.

Both entry points accept a precomputed ``scan_result`` so a caller that has
already run a scan of the *same factor* — e.g. a
:class:`~repro.core.scan.FusedOperator` pass that carried the weakest-edge
payload alongside another one — does not pay for a second butterfly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import INDEX_DTYPE
from ..device.device import Device
from ..errors import ScanError
from ..obs import trace_span
from ..sparse.csr import CSRMatrix
from .scan import BidirectionalScan, MinEdgeOperator, NullOperator, ScanResult
from .structures import Factor

__all__ = ["BrokenCycles", "break_cycles", "detect_cycles"]


def detect_cycles(
    factor: Factor,
    *,
    device: Device | None = None,
    scan_result: ScanResult | None = None,
    compaction=None,
) -> np.ndarray:
    """Boolean mask of vertices that lie on a cycle of the [0,2]-factor.

    ``scan_result`` may be the outcome of *any* completed bidirectional scan
    of ``factor`` (the cycle mask only depends on the lane pointers, not on
    the payload); when given, no scan is run.  ``compaction`` selects the
    scan's frontier-compaction policy (see :mod:`repro.core.frontier`).
    """
    if scan_result is not None:
        return scan_result.cycle_mask
    scan = BidirectionalScan(factor, device=device, compaction=compaction)
    return scan.run(NullOperator()).cycle_mask


@dataclass(frozen=True)
class BrokenCycles:
    """Result of :func:`break_cycles`."""

    forest: Factor
    removed_u: np.ndarray
    removed_v: np.ndarray
    cycle_mask: np.ndarray

    @property
    def n_cycles(self) -> int:
        return int(self.removed_u.size)


def break_cycles(
    factor: Factor,
    graph: CSRMatrix | None = None,
    *,
    device: Device | None = None,
    scan_result: ScanResult | None = None,
    compaction=None,
) -> BrokenCycles:
    """Remove the weakest edge of every cycle of a [0,2]-factor.

    ``graph`` supplies the edge weights (the prepared adjacency A').  All
    vertices of a cycle agree on its weakest edge because edges are ordered
    by the unique triple (|weight|, min id, max id); each cycle therefore
    loses exactly one edge, and the result is a linear forest.

    ``scan_result`` skips the scan: it must be a completed scan of ``factor``
    whose payload carries the :class:`~repro.core.scan.MinEdgeOperator`
    fields ``w``/``u``/``v`` (e.g. from a fused pass); ``graph`` is then
    unused and may be omitted.
    """
    with trace_span(
        "break-cycles",
        category="stage",
        n_vertices=factor.n_vertices,
        reused_scan=scan_result is not None,
    ) as span:
        if scan_result is None:
            if graph is None:
                raise ScanError("break_cycles requires the weighted graph (or a scan_result)")
            scan = BidirectionalScan(factor, device=device, compaction=compaction)
            result = scan.run(MinEdgeOperator(), graph)
        else:
            missing = {"w", "u", "v"} - set(scan_result.payload)
            if missing:
                raise ScanError(
                    f"scan_result payload lacks the weakest-edge fields {sorted(missing)}; "
                    "run (or fuse) MinEdgeOperator"
                )
            result = scan_result
        cycle_mask = result.cycle_mask
        if not bool(cycle_mask.any()):
            if span is not None:
                span.attributes["n_cycles"] = 0
            return BrokenCycles(
                forest=factor,
                removed_u=np.empty(0, dtype=INDEX_DTYPE),
                removed_v=np.empty(0, dtype=INDEX_DTYPE),
                cycle_mask=cycle_mask,
            )
        w = result.payload["w"]
        u = result.payload["u"]
        v = result.payload["v"]
        # per cycle vertex: lexicographic min over the two lanes
        lane1_smaller = (w[:, 1] < w[:, 0]) | (
            (w[:, 1] == w[:, 0]) & ((u[:, 1] < u[:, 0]) | ((u[:, 1] == u[:, 0]) & (v[:, 1] < v[:, 0])))
        )
        lane = lane1_smaller.astype(INDEX_DTYPE)
        rows = np.arange(factor.n_vertices, dtype=INDEX_DTYPE)
        min_u = u[rows, lane]
        min_v = v[rows, lane]
        cyc = np.flatnonzero(cycle_mask)
        if bool(np.isinf(w[cyc, lane[cyc]]).any()):
            raise ScanError("cycle vertex without a resolved weakest edge")
        pairs = np.stack([min_u[cyc], min_v[cyc]], axis=1)
        pairs = np.unique(pairs, axis=0)
        removed_u = pairs[:, 0]
        removed_v = pairs[:, 1]
        forest = factor.remove_edges(removed_u, removed_v)
        if span is not None:
            span.attributes["n_cycles"] = int(removed_u.size)
        return BrokenCycles(
            forest=forest, removed_u=removed_u, removed_v=removed_v, cycle_mask=cycle_mask
        )
