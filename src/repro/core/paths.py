"""Path ids and positions (Section 3.3, step 2 — Algorithm 3).

For an *acyclic* [0,2]-factor (a linear forest), the bidirectional scan with
the addition payload determines, for every vertex, both path ends and the
distance to each.  The paper's convention: *"We define the path ID as the
minimum ID of the vertices at the path ends, and this defines also the
orientation: the vertex at the path end with the smaller ID is at position 1,
its neighbor at position 2, etc."*
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .._validation import INDEX_DTYPE
from ..device.device import Device
from ..errors import ScanError
from .scan import AddOperator, BidirectionalScan, ScanResult, decode_end
from .structures import Factor

__all__ = ["PathInfo", "identify_paths", "paths_from_scan"]


@dataclass(frozen=True)
class PathInfo:
    """Per-vertex path id and 1-based position within the path."""

    path_id: np.ndarray
    position: np.ndarray

    @property
    def n_vertices(self) -> int:
        return int(self.path_id.size)

    @cached_property
    def path_ids(self) -> np.ndarray:
        """Sorted unique path ids (each is the minimum end id of its path)."""
        return np.unique(self.path_id)

    @property
    def n_paths(self) -> int:
        return int(self.path_ids.size)

    def path_sizes(self) -> np.ndarray:
        """Number of vertices of each path, aligned with :attr:`path_ids`."""
        return np.unique(self.path_id, return_counts=True)[1]

    def vertices_of(self, path_id: int) -> np.ndarray:
        """Vertices of one path, ordered by position."""
        members = np.flatnonzero(self.path_id == path_id)
        return members[np.argsort(self.position[members], kind="stable")]


def paths_from_scan(result: ScanResult) -> PathInfo:
    """Algorithm 3's epilogue: path ids and positions from a finished scan.

    ``result`` must be a completed scan of a *linear forest* whose payload
    carries the :class:`~repro.core.scan.AddOperator` accumulator ``r`` —
    either a solo position scan or a fused pass that included one.  Raises
    :class:`~repro.errors.ScanError` on cycles or a missing payload.
    """
    if "r" not in result.payload:
        raise ScanError(
            "scan payload lacks the position accumulator 'r'; run (or fuse) AddOperator"
        )
    if bool(result.cycle_mask.any()):
        n_bad = int(result.cycle_mask.sum())
        raise ScanError(
            f"{n_bad} vertices lie on cycles; identify_paths requires a linear forest"
        )
    ends = decode_end(result.q)  # (N, 2) end vertex ids per lane
    r = result.payload["r"]
    # Alg. 3 lines 30-32: choose the lane pointing at the smaller end id.
    lane = np.argmin(ends, axis=1)
    rows = np.arange(ends.shape[0], dtype=INDEX_DTYPE)
    return PathInfo(path_id=ends[rows, lane], position=r[rows, lane])


def identify_paths(
    forest: Factor,
    *,
    device: Device | None = None,
    compaction=None,
) -> PathInfo:
    """Run the position scan on a linear forest.

    ``compaction`` selects the scan's frontier-compaction policy (see
    :mod:`repro.core.frontier`).  Raises :class:`~repro.errors.ScanError`
    when the factor still contains a cycle — run
    :func:`repro.core.cycles.break_cycles` first.
    """
    scan = BidirectionalScan(forest, device=device, compaction=compaction)
    return paths_from_scan(scan.run(AddOperator()))
