"""Frontier-compaction policies shared by the proposition and scan engines.

Both convergence-aware engines keep a shrinking *frontier* of still-active
work items — directed edges for the :class:`~repro.core.proposer.PropositionEngine`,
(vertex, lane) pairs for the :class:`~repro.core.scan.BidirectionalScan` —
and historically compacted it every round: whenever items died, the
survivors were gathered into fresh dense buffers.  On fast-collapsing
frontiers that is the right call, but on slow-collapsing ones (ecology1-like
graphs, where only a sliver of the frontier dies per round) the repeated
full-buffer gathers can *exceed* the paper-exact loop's traffic — the
regression this module closes.

A :class:`CompactionPolicy` decides, per round, whether to gather now or to
carry the dead items a little longer:

* :class:`EagerCompaction` — compact whenever anything died (the historical
  behaviour, and the default);
* :class:`NeverCompaction` — never gather; dead items are masked out
  in-kernel forever;
* :class:`LazyCompaction` — gather once the dead fraction crosses a
  threshold;
* :class:`AdaptiveCompaction` — consult the roofline cost model
  (:func:`repro.device.costmodel.compaction_cost`): gather exactly when the
  projected dead-lane traffic of staying uncompacted exceeds the gather cost
  of compacting now.

**Bit-identity invariant.** A policy only chooses *when* dead items are
physically removed, never *which* items are dead: deadness is decided by the
engines' monotone retirement conditions, and every kernel masks dead items
exactly as if they had been gathered away.  All policies therefore produce
bit-identical factors, path ids and positions — property-tested in
``tests/properties/test_compaction_properties.py`` against the paper-exact
:mod:`repro.core.ablations` references.  Only launch traffic differs.

Policies are resolved from specs (``"eager"``, ``"never"``, ``"lazy"``,
``"lazy:0.25"``, ``"adaptive"``, ``"auto"``, or a policy instance) by
:func:`resolve_compaction`; with no spec, the ``REPRO_COMPACTION``
environment variable picks the process-wide default (CI runs the property
suite under ``never`` and ``adaptive`` to catch policy drift).  The
``"auto"`` spec defers to :mod:`repro.tune`: the per-matrix recommendation
recorded in ``tuning.json`` by ``repro tune``, falling back to adaptive
(with a :class:`~repro.tune.TuningWarning`) whenever no tuned entry applies
— see docs/TUNING.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..device.costmodel import compaction_cost
from ..errors import ConfigError
from ..obs.metrics import current_metrics

__all__ = [
    "AdaptiveCompaction",
    "CompactionDecision",
    "CompactionPolicy",
    "EagerCompaction",
    "FrontierState",
    "LazyCompaction",
    "NeverCompaction",
    "POLICY_NAMES",
    "record_decision",
    "resolve_compaction",
    "wants_auto",
]

#: Spec names accepted by :func:`resolve_compaction`.
POLICY_NAMES = ("eager", "never", "lazy", "adaptive", "auto")

#: Environment variable holding the process-wide default policy spec.
ENV_VAR = "REPRO_COMPACTION"


@dataclass(frozen=True)
class FrontierState:
    """What an engine knows about its frontier when asking for a decision.

    ``gather_element_bytes`` / ``dead_element_bytes`` parameterize the cost
    model per engine (the proposition frontier moves ``(row, col, value)``
    triples, the scan only index/marker pairs); ``rounds_remaining`` bounds
    the dead-lane projection — the rounds that could still stream the dead
    items if they are kept.
    """

    live: int
    dead: int
    gather_element_bytes: int
    dead_element_bytes: int
    rounds_remaining: int

    @property
    def total(self) -> int:
        return self.live + self.dead

    @property
    def dead_fraction(self) -> float:
        return self.dead / self.total if self.total else 0.0


@dataclass(frozen=True)
class CompactionDecision:
    """One per-round verdict, with the cost-model numbers behind it.

    ``gather_bytes`` / ``dead_lane_bytes`` are the modeled costs of the two
    alternatives (compact now vs. carry the dead lanes for the remaining
    rounds); :attr:`estimated_saved_bytes` is the projected traffic the
    *chosen* action avoids relative to the alternative — it is what the
    observability layer reports as "estimated saved traffic".
    """

    policy: str
    compact: bool
    reason: str
    live: int
    dead: int
    dead_fraction: float
    gather_bytes: int
    dead_lane_bytes: int

    @property
    def estimated_saved_bytes(self) -> int:
        if self.compact:
            return self.dead_lane_bytes - self.gather_bytes
        return self.gather_bytes - self.dead_lane_bytes


def _decide(state: FrontierState, policy: str, compact: bool, reason: str) -> CompactionDecision:
    if state.dead == 0:
        compact, reason = False, "clean"
    cost = compaction_cost(
        live=state.live,
        dead=state.dead,
        gather_element_bytes=state.gather_element_bytes,
        dead_element_bytes=state.dead_element_bytes,
        rounds_remaining=state.rounds_remaining,
    )
    return CompactionDecision(
        policy=policy,
        compact=compact,
        reason=reason,
        live=state.live,
        dead=state.dead,
        dead_fraction=state.dead_fraction,
        gather_bytes=cost.gather_bytes,
        dead_lane_bytes=cost.dead_lane_bytes,
    )


@runtime_checkable
class CompactionPolicy(Protocol):
    """The pluggable when-to-gather rule of the frontier engines."""

    name: str

    def decide(self, state: FrontierState) -> CompactionDecision: ...


class EagerCompaction:
    """Compact whenever anything died — the historical compact-every-round."""

    name = "eager"

    def decide(self, state: FrontierState) -> CompactionDecision:
        return _decide(state, self.name, True, "dead>0")


class NeverCompaction:
    """Never gather; dead items stay masked in the buffers forever."""

    name = "never"

    def decide(self, state: FrontierState) -> CompactionDecision:
        return _decide(state, self.name, False, "never")


class LazyCompaction:
    """Gather once the dead fraction crosses ``threshold`` (default 0.5)."""

    def __init__(self, threshold: float = 0.5):
        if not (0.0 < threshold <= 1.0):
            raise ConfigError(
                f"lazy compaction threshold must be in (0, 1], got {threshold}"
            )
        self.threshold = float(threshold)

    @property
    def name(self) -> str:
        return f"lazy({self.threshold:g})"

    def decide(self, state: FrontierState) -> CompactionDecision:
        crossed = state.dead_fraction >= self.threshold
        reason = (
            f"dead {state.dead_fraction:.2f} >= {self.threshold:g}"
            if crossed
            else f"dead {state.dead_fraction:.2f} < {self.threshold:g}"
        )
        return _decide(state, self.name, crossed, reason)


class AdaptiveCompaction:
    """Cost-model driven: gather exactly when it is projected to pay off.

    Uses :func:`repro.device.costmodel.compaction_cost` to compare the gather
    cost of compacting now against the dead-lane traffic of carrying the dead
    items through the remaining rounds; compacts iff the latter is larger.
    """

    name = "adaptive"

    def decide(self, state: FrontierState) -> CompactionDecision:
        cost = compaction_cost(
            live=state.live,
            dead=state.dead,
            gather_element_bytes=state.gather_element_bytes,
            dead_element_bytes=state.dead_element_bytes,
            rounds_remaining=state.rounds_remaining,
        )
        if cost.compaction_saves:
            reason = f"gather {cost.gather_bytes} < carry {cost.dead_lane_bytes}"
        else:
            reason = f"gather {cost.gather_bytes} >= carry {cost.dead_lane_bytes}"
        return _decide(state, self.name, cost.compaction_saves, reason)


def wants_auto(spec: "CompactionPolicy | str | None") -> bool:
    """True when ``spec`` (or the environment default) names the ``auto`` policy.

    Engines whose constructor does not see the graph (the scan receives it
    only at :meth:`~repro.core.scan.BidirectionalScan.run` time) use this to
    defer :func:`resolve_compaction` until a graph is available to
    fingerprint.
    """
    if spec is None:
        spec = os.environ.get(ENV_VAR, "").strip() or "eager"
    return isinstance(spec, str) and spec.partition(":")[0].strip().lower() == "auto"


def resolve_compaction(
    spec: "CompactionPolicy | str | None" = None,
    *,
    graph=None,
) -> CompactionPolicy:
    """Turn a policy spec into a policy instance.

    ``None`` falls back to the ``REPRO_COMPACTION`` environment variable and
    finally to ``"eager"``.  String specs: ``eager``, ``never``, ``lazy``,
    ``lazy:<threshold>``, ``adaptive``, ``auto``.  Policy instances pass
    through.

    ``"auto"`` consults the :mod:`repro.tune` cache (``tuning.json`` /
    ``$REPRO_TUNING_CACHE``) under the fingerprint of ``graph`` — the
    *prepared* adjacency the engine will run on, passed by the engines
    themselves.  A missing graph, a missing/corrupt cache or a fingerprint
    miss all degrade to :class:`AdaptiveCompaction` with a
    :class:`~repro.tune.TuningWarning`; the ``"auto"`` path never raises.

    Every :class:`~repro.errors.ConfigError` raised here names where the bad
    spec came from — the ``REPRO_COMPACTION`` environment variable or an
    explicit ``compaction=`` spec — because the resolution happens deep
    inside the engines, far from whoever set the value.
    """
    source = "explicit compaction= spec"
    if spec is None:
        env = os.environ.get(ENV_VAR, "").strip()
        spec = env or "eager"
        if env:
            source = f"{ENV_VAR} environment variable"
    if isinstance(spec, str):
        base, _, arg = spec.partition(":")
        base = base.strip().lower()
        if base == "auto":
            if arg:
                raise ConfigError(
                    f"compaction policy 'auto' takes no argument, got {spec!r} "
                    f"(from {source})"
                )
            # deferred import: repro.tune imports this module at load time
            from ..tune import auto_policy

            return auto_policy(graph)
        if base == "eager":
            policy = EagerCompaction()
        elif base == "never":
            policy = NeverCompaction()
        elif base == "lazy":
            try:
                policy = LazyCompaction(float(arg)) if arg else LazyCompaction()
            except (ValueError, ConfigError) as exc:
                detail = f": {exc}" if isinstance(exc, ConfigError) else ""
                raise ConfigError(
                    f"bad lazy compaction threshold {arg!r} in spec {spec!r} "
                    f"(from {source}){detail}"
                ) from exc
        elif base == "adaptive":
            policy = AdaptiveCompaction()
        else:
            raise ConfigError(
                f"unknown compaction policy {spec!r} (from {source}); expected "
                f"one of {POLICY_NAMES} (lazy accepts lazy:<threshold>)"
            )
        if arg and base != "lazy":
            raise ConfigError(
                f"compaction policy {base!r} takes no argument, got {spec!r} "
                f"(from {source})"
            )
        return policy
    if isinstance(spec, CompactionPolicy):
        return spec
    raise ConfigError(
        f"cannot resolve a compaction policy from {spec!r} (from {source})"
    )


def record_decision(decision: CompactionDecision, *, engine: str, launch=None) -> None:
    """Publish one decision to the observability surfaces.

    Annotates the enclosing kernel launch (the notes ride the
    :class:`~repro.device.device.KernelRecord` and its tracer span, so
    :func:`repro.device.trace.render_convergence` can show them) and bumps
    the ambient :class:`~repro.obs.metrics.MetricsRegistry` when one is
    installed.
    """
    if launch is not None:
        launch.annotate(
            compaction="compact" if decision.compact else "skip",
            compaction_policy=decision.policy,
            dead_fraction=decision.dead_fraction,
            est_saved_bytes=decision.estimated_saved_bytes,
        )
    metrics = current_metrics()
    if metrics is not None:
        prefix = f"compaction.{engine}"
        metrics.counter(f"{prefix}.decisions").inc()
        metrics.counter(f"{prefix}.compacts" if decision.compact else f"{prefix}.skips").inc()
        metrics.histogram(f"{prefix}.dead_fraction").observe(decision.dead_fraction)
        metrics.histogram(f"{prefix}.est_saved_bytes").observe(decision.estimated_saved_bytes)
