"""Weight-coverage metrics, Equations 3–5 of the paper.

The weight of a factor is ω_π = Σ_{e ∈ E_π} |ω(e)| over its undirected edges
(Eq. 3), the *relative weight coverage* is c_π = ω_π / ω_G (Eq. 4), and c_id
(Eq. 5) is the coverage of the sub/superdiagonal in the original vertex
order — the weight a tridiagonal preconditioner would capture without any
reordering.

For non-symmetric A the paper computes the factor on ``A' + A'^T`` but reports
coverage *with respect to the original matrix A*.  We define the undirected
edge weight as ``|ω({v,w})| := (|a_vw| + |a_wv|) / 2``, which reduces exactly
to the paper's |ω| for symmetric matrices and counts each direction of a
non-symmetric coupling once.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix
from .structures import Factor

__all__ = ["coverage", "factor_weight", "graph_weight", "identity_coverage"]


def graph_weight(a: CSRMatrix) -> float:
    """ω_G: total undirected off-diagonal weight of the graph of ``A``."""
    off = a.nnz_rows != a.indices
    return float(np.abs(a.data[off]).sum()) / 2.0


def _edge_weights(a: CSRMatrix, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """|ω({u_i, v_i})| = (|a_uv| + |a_vu|) / 2 per listed edge."""
    return (np.abs(a.gather(u, v)) + np.abs(a.gather(v, u))) / 2.0


def factor_weight(a: CSRMatrix, factor: Factor) -> float:
    """ω_π (Eq. 3) of ``factor`` with respect to the original matrix ``A``."""
    u, v = factor.edges()
    if u.size == 0:
        return 0.0
    return float(_edge_weights(a, u, v).sum())


def coverage(a: CSRMatrix, factor: Factor) -> float:
    """c_π (Eq. 4).  Returns 0 for an edgeless graph."""
    total = graph_weight(a)
    if total == 0.0:
        return 0.0
    return factor_weight(a, factor) / total


def identity_coverage(a: CSRMatrix) -> float:
    """c_id (Eq. 5): coverage of the sub/superdiagonal in original order."""
    total = graph_weight(a)
    if total == 0.0 or a.n_rows < 2:
        return 0.0
    i = np.arange(a.n_rows - 1, dtype=np.int64)
    w = _edge_weights(a, i, i + 1)
    return float(w.sum()) / total
