"""Reverse Cuthill-McKee ordering — the classical reordering baseline.

RCM minimises matrix *bandwidth* from connectivity alone; the paper's
linear-forest permutation instead maximises the *weight* inside a fixed
tridiagonal band.  Having both makes the contrast measurable (the
``test_reordering_comparison`` extension benchmark): RCM produces a narrow
envelope whose three central diagonals may still hold little weight, while
the forest ordering concentrates weight but leaves the rest of the matrix
scattered.
"""

from __future__ import annotations

import numpy as np

from .._validation import INDEX_DTYPE, check_square
from ..sparse.csr import CSRMatrix

__all__ = ["bandwidth", "band_weight_fraction", "rcm_ordering"]


def rcm_ordering(a: CSRMatrix) -> np.ndarray:
    """Reverse Cuthill-McKee permutation (``perm[k]`` = old id of new k).

    Components are processed in order of their minimum-degree vertex; within
    a BFS level, neighbours are visited in increasing degree (ties by id),
    the classical heuristic.  Connectivity is the symmetrised pattern.
    """
    n = check_square(a.shape)
    # symmetrise the pattern so the ordering is well-defined for any input
    pattern = a.to_coo()
    off = pattern.row != pattern.col
    u = np.concatenate([pattern.row[off], pattern.col[off]])
    v = np.concatenate([pattern.col[off], pattern.row[off]])
    order_edges = np.lexsort((v, u))
    u, v = u[order_edges], v[order_edges]
    keep = np.ones(u.size, dtype=bool)
    keep[1:] = (u[1:] != u[:-1]) | (v[1:] != v[:-1])
    u, v = u[keep], v[keep]
    indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    np.add.at(indptr, u + 1, 1)
    np.cumsum(indptr, out=indptr)
    degree = np.diff(indptr)

    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    # component seeds: minimum degree first (classical pseudo-peripheral pick)
    seeds = np.lexsort((np.arange(n), degree))
    for seed in seeds.tolist():
        if visited[seed]:
            continue
        visited[seed] = True
        queue = [seed]
        head = 0
        while head < len(queue):
            current = queue[head]
            head += 1
            order.append(current)
            lo, hi = int(indptr[current]), int(indptr[current + 1])
            nbrs = [int(w) for w in v[lo:hi] if not visited[w]]
            nbrs.sort(key=lambda w: (degree[w], w))
            for w in nbrs:
                visited[w] = True
                queue.append(w)
    return np.asarray(order[::-1], dtype=INDEX_DTYPE)


def bandwidth(a: CSRMatrix, perm: np.ndarray | None = None) -> int:
    """max |i - j| over stored off-diagonal entries (under ``perm``)."""
    coo = a.to_coo()
    row, col = coo.row, coo.col
    if perm is not None:
        new_index = np.empty(a.n_rows, dtype=INDEX_DTYPE)
        new_index[np.asarray(perm)] = np.arange(a.n_rows, dtype=INDEX_DTYPE)
        row, col = new_index[row], new_index[col]
    if row.size == 0:
        return 0
    return int(np.abs(row - col).max())


def band_weight_fraction(a: CSRMatrix, perm: np.ndarray, half_width: int = 1) -> float:
    """Fraction of off-diagonal |weight| inside the band |i-j| <= width."""
    coo = a.to_coo()
    off = coo.row != coo.col
    row, col, val = coo.row[off], coo.col[off], np.abs(coo.val[off])
    total = float(val.sum())
    if total == 0.0:
        return 0.0
    new_index = np.empty(a.n_rows, dtype=INDEX_DTYPE)
    new_index[np.asarray(perm)] = np.arange(a.n_rows, dtype=INDEX_DTYPE)
    inside = np.abs(new_index[row] - new_index[col]) <= half_width
    return float(val[inside].sum()) / total
