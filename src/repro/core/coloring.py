"""Parallel greedy graph coloring (Jones-Plassmann).

The paper's Related Work cites efficient GPU graph *matching and coloring*
(Cohen & Castonguay; Naumov et al.) as the algorithmic neighbourhood of its
factor computation.  This module provides the coloring half on the same
substrate and with the same randomisation device: per round, every uncolored
vertex whose hash priority (the Algorithm 2 charge hash) is a strict local
maximum among its uncolored neighbours takes the smallest color unused in
its neighbourhood.  Expected O(log N) data-parallel rounds.

Used by :class:`repro.solvers.smoothers.ColoredGaussSeidel`: color classes
are independent sets, so a Gauss-Seidel sweep over one class is a single
vectorized update.
"""

from __future__ import annotations

import numpy as np

from .._validation import INDEX_DTYPE, check_square
from ..errors import ScanError
from ..sparse.csr import CSRMatrix
from .charge import charge_hash

__all__ = ["color_graph", "is_valid_coloring"]

UNCOLORED = -1


def color_graph(graph: CSRMatrix, *, seed: int = 0, max_rounds: int | None = None) -> np.ndarray:
    """Color the (symmetric-pattern) graph of ``graph``; returns colors ≥ 0.

    The diagonal is ignored.  ``max_rounds`` defaults to a generous bound;
    exceeding it raises (it would indicate a priority-tie livelock, which
    the id tie-break prevents).
    """
    n = check_square(graph.shape)
    rows = graph.nnz_rows
    cols = graph.indices
    off = rows != cols
    rows, cols = rows[off], cols[off]

    # strict total priority order: hash first, vertex id as tie-break
    ids = np.arange(n, dtype=INDEX_DTYPE)
    priority = charge_hash(ids.astype(np.uint32), 0, seed).astype(np.uint64) << np.uint64(32)
    priority |= ids.astype(np.uint64)

    colors = np.full(n, UNCOLORED, dtype=INDEX_DTYPE)
    max_rounds = max_rounds or 4 * int(np.ceil(np.log2(max(n, 2)))) + 8
    # upper bound on colors: max degree + 1
    max_degree = int(graph.row_lengths.max(initial=0))
    n_colors_cap = max_degree + 1

    for _ in range(max_rounds):
        uncolored = colors == UNCOLORED
        if not bool(uncolored.any()):
            return colors
        # a vertex wins its round when no *uncolored* neighbour outranks it
        edge_live = uncolored[rows] & uncolored[cols]
        blocked = np.zeros(n, dtype=bool)
        lose = edge_live & (priority[cols] > priority[rows])
        np.logical_or.at(blocked, rows[lose], True)
        winners = uncolored & ~blocked
        if not bool(winners.any()):  # pragma: no cover - tie-break prevents this
            raise ScanError("coloring made no progress")
        # smallest color unused among already-colored neighbours
        win_edges = winners[rows] & (colors[cols] != UNCOLORED)
        used = np.zeros((n, n_colors_cap), dtype=bool)
        used[rows[win_edges], colors[cols[win_edges]]] = True
        first_free = np.argmin(used, axis=1)  # first False per row
        colors[winners] = first_free[winners]

    uncolored = colors == UNCOLORED
    if bool(uncolored.any()):  # pragma: no cover - bound is generous
        raise ScanError("coloring did not converge within the round bound")
    return colors


def is_valid_coloring(graph: CSRMatrix, colors: np.ndarray) -> bool:
    """No edge joins two vertices of the same color."""
    rows = graph.nnz_rows
    cols = graph.indices
    off = rows != cols
    return not bool((colors[rows[off]] == colors[cols[off]]).any())
