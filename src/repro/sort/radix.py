"""Least-significant-bit split radix sort.

The GPU building block (Blelloch; used inside CUB's radix sort) is the stable
1-bit *split*: elements with bit 0 keep their relative order and precede all
elements with bit 1, with destinations computed from two prefix sums.  The
full sort runs one split per key bit, low to high — stability of each pass
makes the composite sort correct.

Only unsigned integer keys are supported (the linear-forest permutation packs
its key into uint64, see :mod:`repro.sort.keys`); passes above the highest set
bit of the input are skipped.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

__all__ = ["radix_argsort", "radix_sort", "split_by_bit"]


def split_by_bit(keys: np.ndarray, bit: int, order: np.ndarray) -> np.ndarray:
    """One stable 1-bit partition pass.

    ``order`` is the current permutation (positions into ``keys``); the
    return value is the permutation after stably moving all elements with the
    given key bit clear before all elements with it set.
    """
    bits = (keys[order] >> np.uint64(bit)) & np.uint64(1)
    zeros = bits == 0
    n_zeros = int(np.count_nonzero(zeros))
    dest = np.empty(order.size, dtype=np.int64)
    # prefix sums give stable destinations for both partitions
    dest[zeros] = np.arange(n_zeros, dtype=np.int64)
    dest[~zeros] = n_zeros + np.arange(order.size - n_zeros, dtype=np.int64)
    out = np.empty_like(order)
    out[dest] = order
    return out


def radix_argsort(keys: np.ndarray) -> np.ndarray:
    """Return the stable ascending permutation of unsigned integer ``keys``."""
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ShapeError("keys must be one-dimensional")
    if keys.dtype.kind != "u":
        if keys.dtype.kind == "i":
            if keys.size and int(keys.min()) < 0:
                raise ShapeError("signed keys must be non-negative")
            keys = keys.astype(np.uint64)
        else:
            raise ShapeError(f"unsupported key dtype {keys.dtype}")
    else:
        keys = keys.astype(np.uint64)
    order = np.arange(keys.size, dtype=np.int64)
    if keys.size == 0:
        return order
    max_key = int(keys.max())
    n_bits = max(1, max_key.bit_length())
    for bit in range(n_bits):
        order = split_by_bit(keys, bit, order)
    return order


def radix_sort(
    keys: np.ndarray, values: np.ndarray | None = None
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Sort ``keys`` ascending (optionally permuting ``values`` alongside)."""
    order = radix_argsort(keys)
    sorted_keys = np.asarray(keys)[order]
    if values is None:
        return sorted_keys
    values = np.asarray(values)
    if values.shape[0] != order.size:
        raise ShapeError("values must have the same leading dimension as keys")
    return sorted_keys, values[order]
