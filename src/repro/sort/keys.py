"""Composite sort keys for the linear-forest permutation.

The radix sort orders vertices by (path id, position within the path); both
components are packed into one unsigned 64-bit key with the path id in the
high bits so that a single numeric sort yields the lexicographic order.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

__all__ = ["pack_keys", "unpack_keys", "POSITION_BITS"]

#: Bits reserved for the position component (low bits of the key).
POSITION_BITS = 32
_POSITION_MASK = (1 << POSITION_BITS) - 1


def pack_keys(path_id: np.ndarray, position: np.ndarray) -> np.ndarray:
    """Pack ``(path_id, position)`` into uint64 keys, path id major."""
    path_id = np.asarray(path_id, dtype=np.int64)
    position = np.asarray(position, dtype=np.int64)
    if path_id.shape != position.shape:
        raise ShapeError("path_id and position must have equal shapes")
    if path_id.size:
        if int(path_id.min()) < 0 or int(position.min()) < 0:
            raise ShapeError("key components must be non-negative")
        if int(position.max()) > _POSITION_MASK:
            raise ShapeError(f"position exceeds {POSITION_BITS} bits")
        if int(path_id.max()) >= 1 << (64 - POSITION_BITS):
            raise ShapeError(f"path id exceeds {64 - POSITION_BITS} bits")
    return (path_id.astype(np.uint64) << np.uint64(POSITION_BITS)) | position.astype(
        np.uint64
    )


def unpack_keys(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_keys`."""
    keys = np.asarray(keys, dtype=np.uint64)
    path_id = (keys >> np.uint64(POSITION_BITS)).astype(np.int64)
    position = (keys & np.uint64(_POSITION_MASK)).astype(np.int64)
    return path_id, position
