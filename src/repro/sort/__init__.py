"""Parallel radix sort substrate (the CUB radix-sort stand-in).

Section 4.3 of the paper sorts vertex ids by a key composed of path id and
position, using CUB's radix sort, to obtain the permutation under which the
linear forest's adjacency matrix is tridiagonal.  This subpackage provides:

* :mod:`~repro.sort.keys` — packing/unpacking of (path id, position) into a
  single 64-bit key.
* :mod:`~repro.sort.radix` — a least-significant-bit *split* radix sort built
  from the canonical GPU primitive: a stable 1-bit partition implemented with
  two prefix sums per pass.
"""

from .keys import pack_keys, unpack_keys
from .radix import radix_argsort, radix_sort

__all__ = ["pack_keys", "radix_argsort", "radix_sort", "unpack_keys"]
