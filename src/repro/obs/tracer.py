"""Nested-span tracing — the structured counterpart of Nsight's timeline.

The paper's evaluation is built on instrumentation: per-kernel traffic
(Table 2), the setup-time breakdown (Figure 6), convergence curves
(Figure 4).  :class:`Tracer` records all of it as one tree of **spans** —
pipeline run → phase → kernel launch → solver iteration — each carrying
attributes (bytes moved, frontier lanes, residuals).  The span stream is
exportable as Chrome trace-event JSON (loadable in Perfetto or
``chrome://tracing``) and as JSONL, and the run-report builder in
:mod:`repro.obs.report` aggregates it into a machine-readable schema.

A process-wide *ambient* tracer makes the instrumentation zero-cost when
off: every instrumented site asks :func:`current_tracer` and skips all
bookkeeping when none is installed.  Install one for the dynamic extent of
a run with :func:`use_tracer`::

    tracer = Tracer("extract")
    with use_tracer(tracer):
        extract_linear_forest(a, device=Device())
    tracer.write_chrome_trace("trace.json")

Timing uses ``time.perf_counter`` — this module and :mod:`repro.device`
are the only places allowed to touch the raw clock (enforced by
``tests/test_no_raw_timers.py``), so every measurement flows through the
tracer or the device.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "SCHEMA_VERSION",
    "Span",
    "Tracer",
    "current_tracer",
    "monotonic_clock",
    "trace_span",
    "use_tracer",
]

#: Version tag stamped into every export (bump on incompatible changes).
SCHEMA_VERSION = "repro.obs/v1"

#: The one sanctioned monotonic clock of the observability layer.  Code
#: outside ``src/repro/device/`` and this module must not call
#: ``time.perf_counter`` directly (``tests/test_no_raw_timers.py``) — the
#: aggregation/exposition layers take an injectable ``clock`` defaulting to
#: this, so tests can substitute a deterministic clock.
monotonic_clock = time.perf_counter


def json_safe(value):
    """Coerce numpy scalars/arrays (and nested containers) to JSON types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    # numpy scalars expose item(); arrays expose tolist()
    if hasattr(value, "item") and getattr(value, "ndim", None) in (None, 0):
        return json_safe(value.item())
    if hasattr(value, "tolist"):
        return json_safe(value.tolist())
    return str(value)


@dataclass
class Span:
    """One timed region of a run.

    ``start``/``end`` are seconds relative to the owning tracer's epoch;
    ``end`` is ``None`` while the span is open.  ``category`` classifies the
    level of the tree: ``"run"`` (a pipeline entry point), ``"phase"`` (a
    Figure-6 phase), ``"stage"`` (an algorithm stage such as a scan or a
    proposition round), ``"kernel"`` (one simulated launch), ``"solver"``.
    """

    name: str
    category: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float | None:
        """Duration, or ``None`` while the span is still open."""
        if self.end is None:
            return None
        return self.end - self.start

    def as_dict(self) -> dict:
        """JSONL row for this span (all values JSON-safe)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
            "attributes": json_safe(self.attributes),
        }


class Tracer:
    """Records a tree of nested :class:`Span`\\ s.

    Spans nest through an explicit stack: :meth:`start_span` parents the new
    span under the innermost open one, :meth:`end_span` closes it.  The
    :meth:`span` context manager pairs the two and stamps an ``error``
    attribute when the body raises (the exception propagates) — a failed
    run keeps a truthful trace, mirroring the exception-safe accounting of
    :meth:`repro.device.device.Device.launch`.
    """

    def __init__(self, name: str = "run"):
        self.name = name
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._epoch = time.perf_counter()

    # -- recording ---------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def start_span(self, name: str, *, category: str = "span", **attributes) -> Span:
        """Open a span nested under the innermost open span."""
        span = Span(
            name=name,
            category=category,
            span_id=len(self.spans),
            parent_id=self._stack[-1].span_id if self._stack else None,
            start=self._now(),
            attributes={k: v for k, v in attributes.items() if v is not None},
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span, **attributes) -> None:
        """Close ``span``; ``None``-valued attributes are dropped."""
        if span.end is None:
            span.end = self._now()
        for key, value in attributes.items():
            if value is not None:
                span.attributes[key] = value
        # tolerate out-of-order closes: drop the span (and anything the
        # caller abandoned above it) from the open stack
        if span in self._stack:
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            self._stack.pop()

    @contextmanager
    def span(self, name: str, *, category: str = "span", **attributes) -> Iterator[Span]:
        """``with tracer.span(...)``: open/close a span around the body."""
        s = self.start_span(name, category=category, **attributes)
        error = None
        try:
            yield s
        except BaseException as exc:
            error = type(exc).__name__
            raise
        finally:
            self.end_span(s, error=error)

    # -- queries -----------------------------------------------------------
    def find(self, *, category: str | None = None, name_prefix: str | None = None) -> list[Span]:
        """Spans filtered by category and/or name prefix, in start order."""
        out = []
        for s in self.spans:
            if category is not None and s.category != category:
                continue
            if name_prefix is not None and not s.name.startswith(name_prefix):
                continue
            out.append(s)
        return out

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def ancestors(self, span: Span) -> list[Span]:
        """Chain of enclosing spans, innermost first."""
        out = []
        while span.parent_id is not None:
            span = self.spans[span.parent_id]
            out.append(span)
        return out

    # -- export ------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON (complete ``"X"`` events, µs timestamps).

        Load the written file in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``; events on one thread nest by time containment,
        which reproduces the span tree exactly because spans are strictly
        nested.
        """
        now = self._now()
        events = []
        for s in self.spans:
            end = s.end if s.end is not None else now
            events.append(
                {
                    "name": s.name,
                    "cat": s.category,
                    "ph": "X",
                    "ts": s.start * 1e6,
                    "dur": max(0.0, (end - s.start) * 1e6),
                    "pid": 1,
                    "tid": 1,
                    "args": json_safe(s.attributes),
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"tracer": self.name, "schema": SCHEMA_VERSION},
        }

    def to_jsonl(self) -> str:
        """One JSON object per span (ids + parent ids preserved)."""
        return "\n".join(json.dumps(s.as_dict()) for s in self.spans)

    def write_chrome_trace(self, path) -> None:
        with open(path, "w") as f:
            json.dump(self.to_chrome_trace(), f, indent=1)
            f.write("\n")

    def write_jsonl(self, path) -> None:
        with open(path, "w") as f:
            text = self.to_jsonl()
            f.write(text + "\n" if text else "")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer(name={self.name!r}, spans={len(self.spans)})"


# -- the ambient tracer ----------------------------------------------------
_ACTIVE: list[Tracer] = []


def current_tracer() -> Tracer | None:
    """The innermost tracer installed with :func:`use_tracer`, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the ``with`` body."""
    _ACTIVE.append(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.pop()


@contextmanager
def trace_span(name: str, *, category: str = "span", **attributes) -> Iterator[Span | None]:
    """Span on the ambient tracer — yields ``None`` (no-op) when tracing is off.

    The instrumentation hook used throughout the library: sites write

    ``with trace_span("break-cycles", category="stage") as span: ...``

    and pay nothing unless a tracer is installed.  ``span.attributes`` may
    be updated inside the body to attach results known only at the end.
    """
    tracer = current_tracer()
    if tracer is None:
        yield None
        return
    with tracer.span(name, category=category, **attributes) as s:
        yield s
