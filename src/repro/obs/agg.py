"""Daemon-lifetime telemetry aggregation for the serve layer.

Per-request run reports (``repro.serve``) answer *what did this request
cost*; this module answers *what has the daemon been doing all along*.  One
:class:`Aggregator` is fed once per request and folds everything into three
daemon-lifetime views:

* **per-op latency histograms** — :class:`~repro.obs.metrics.Histogram`
  instruments whose bounded reservoirs make p50/p95/p99 available for the
  whole daemon lifetime at constant memory;
* **rolling time-windowed counters** (:class:`RollingCounter`) — requests,
  cache hits/misses/evictions, coalesced followers, batched members, kernel
  launches and simulated bytes over the trailing window (default 60 s), so
  "what is the traffic *right now*" is answerable without diffing
  snapshots;
* a **tail-based trace sampler** (:class:`TailSampler`) — full span trees
  are expensive to retain, so every request's trace is offered to the
  sampler and only the interesting tail survives: 100% of errored requests
  and successful requests slower than the current ``1 - slow_fraction``
  latency quantile.  Everything else is dropped *after* its numbers are
  folded into the aggregates, so sampling never changes a total.

:meth:`Aggregator.snapshot` serializes all of it as the
``repro.serve/stats/v2`` document that the daemon's ``stats`` op returns,
the Prometheus writer renders, and the telemetry JSONL log appends (see
:mod:`repro.obs.expose` and ``docs/OBSERVABILITY.md``).

Everything is thread-safe under one aggregator lock, and **all scheduling
is clock-injectable**: the default clock is the tracer's
:data:`~repro.obs.tracer.monotonic_clock`, and tests substitute a
deterministic fake (the raw-timer lint keeps this module off the raw
stdlib timers).
"""

from __future__ import annotations

import threading
from collections import deque

from .metrics import Histogram
from .tracer import json_safe, monotonic_clock

__all__ = [
    "Aggregator",
    "RollingCounter",
    "STATS_SCHEMA",
    "TailSampler",
]

#: Schema tag of the aggregate snapshot (the daemon's ``stats`` op, the
#: telemetry JSONL lines, the Prometheus writer's source).  v1 was the
#: bare ``{protocol, cache, metrics}`` stats payload; v2 adds uptime,
#: per-op latency quantiles, rolling windows, totals and the sampler.
STATS_SCHEMA = "repro.serve/stats/v2"

#: Window counter names an :class:`Aggregator` maintains.
WINDOW_COUNTERS = (
    "requests",
    "errors",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "coalesced",
    "batched_members",
    "launches",
    "bytes",
)


class RollingCounter:
    """A counter over the trailing time window, as a ring of buckets.

    The window is divided into ``buckets`` equal slices; :meth:`inc` adds
    to the slice containing ``now`` and :meth:`total` sums the slices still
    inside the window.  Stale slices are recycled lazily by epoch stamp, so
    neither operation allocates.  Not thread-safe on its own — the owning
    :class:`Aggregator` serializes access under its lock.
    """

    def __init__(self, window_seconds: float = 60.0, buckets: int = 12):
        if window_seconds <= 0:
            raise ValueError(f"window must be positive, got {window_seconds}")
        if buckets < 1:
            raise ValueError(f"need at least one bucket, got {buckets}")
        self.window_seconds = float(window_seconds)
        self.n_buckets = int(buckets)
        self.bucket_seconds = self.window_seconds / self.n_buckets
        self._values = [0.0] * self.n_buckets
        self._epochs = [None] * self.n_buckets  # which slice each slot holds

    def _slot(self, now: float) -> int:
        epoch = int(now // self.bucket_seconds)
        i = epoch % self.n_buckets
        if self._epochs[i] != epoch:
            self._epochs[i] = epoch
            self._values[i] = 0.0
        return i

    def inc(self, now: float, amount: float = 1.0) -> None:
        self._values[self._slot(now)] += amount

    def total(self, now: float) -> float:
        epoch = int(now // self.bucket_seconds)
        return sum(
            v
            for v, e in zip(self._values, self._epochs)
            if e is not None and 0 <= epoch - e < self.n_buckets
        )


class TailSampler:
    """Retain full traces only for the interesting tail of the traffic.

    Decision rule, deterministic given the request sequence:

    * an **errored** request is always retained;
    * a **successful** request is retained iff its latency is *strictly
      greater* than the ``1 - slow_fraction`` quantile of all successful
      latencies observed so far (its own included) — with
      ``slow_fraction=0`` nothing qualifies (nothing exceeds the running
      max) and with ``slow_fraction=1`` everything is retained.

    The quantile lives in a deterministic-seed
    :class:`~repro.obs.metrics.Histogram` reservoir, so the threshold is
    reproducible for a given latency sequence.  Retained traces sit in a
    bounded ring (``capacity``, oldest evicted first); the counters keep
    the lifetime totals either way.
    """

    def __init__(
        self,
        slow_fraction: float = 0.05,
        capacity: int = 32,
        *,
        reservoir_seed: int = 2022,
    ):
        if not 0.0 <= slow_fraction <= 1.0:
            raise ValueError(
                f"slow fraction must be in [0, 1], got {slow_fraction}"
            )
        if capacity < 0:
            raise ValueError(f"trace capacity cannot be negative: {capacity}")
        self.slow_fraction = float(slow_fraction)
        self.capacity = int(capacity)
        self._latency = Histogram(
            "sampler.success_latency", reservoir_seed=reservoir_seed
        )
        self.retained: deque = deque(maxlen=capacity if capacity else 1)
        self.retained_errored = 0
        self.retained_slow = 0
        self.dropped = 0

    def admit(self, latency: float, *, errored: bool) -> bool:
        """Decide retention for one request (and fold its latency)."""
        if errored:
            self.retained_errored += 1
            return True
        self._latency.observe(latency)
        if self.slow_fraction >= 1.0:
            self.retained_slow += 1
            return True
        threshold = self._latency.quantile(1.0 - self.slow_fraction)
        if self.slow_fraction > 0.0 and threshold is not None and latency > threshold:
            self.retained_slow += 1
            return True
        self.dropped += 1
        return False

    def keep(self, record: dict) -> None:
        """Store a retained trace record in the bounded ring."""
        if self.capacity:
            self.retained.append(record)

    def stats(self) -> dict:
        return {
            "slow_fraction": self.slow_fraction,
            "capacity": self.capacity,
            "retained": len(self.retained),
            "retained_errored": self.retained_errored,
            "retained_slow": self.retained_slow,
            "dropped": self.dropped,
        }


class Aggregator:
    """Thread-safe daemon-lifetime aggregation, fed once per request.

    ``clock`` is any zero-argument callable returning monotonic seconds;
    the default is the tracer's :data:`~repro.obs.tracer.monotonic_clock`.
    The serve daemon measures request latency with this same clock
    (``aggregator.clock()`` before and after the dispatch), so an injected
    deterministic clock makes every latency — and therefore every quantile
    and every sampling decision — reproducible in tests.
    """

    def __init__(
        self,
        *,
        clock=None,
        window_seconds: float = 60.0,
        window_buckets: int = 12,
        slow_trace_fraction: float = 0.05,
        trace_capacity: int = 32,
    ):
        self.clock = clock if clock is not None else monotonic_clock
        self._lock = threading.Lock()
        self.started = self.clock()
        self._ops: dict[str, dict] = {}  # op -> {count, errors, latency}
        self._windows = {
            name: RollingCounter(window_seconds, window_buckets)
            for name in WINDOW_COUNTERS
        }
        self.window_seconds = float(window_seconds)
        self.sampler = TailSampler(slow_trace_fraction, trace_capacity)
        self._totals = {name: 0 for name in WINDOW_COUNTERS}
        self._last_evictions: float = 0
        self._fresh_traces: deque = deque()  # drained by the telemetry log

    # -- feeding -----------------------------------------------------------
    def _op_stats(self, op: str) -> dict:
        stats = self._ops.get(op)
        if stats is None:
            stats = {
                "count": 0,
                "errors": 0,
                "latency": Histogram(f"serve.latency.{op}"),
            }
            self._ops[op] = stats
        return stats

    def record_request(
        self,
        op: str,
        *,
        latency: float,
        error: str | None = None,
        cached: bool | None = None,
        coalesced: bool = False,
        batch_size: int = 0,
        launches: int = 0,
        bytes: int = 0,
        evictions_total: int | None = None,
        trace: list | None = None,
        request_id=None,
    ) -> bool:
        """Fold one finished request; returns whether its trace was retained.

        ``cached=None`` means the request never consulted the cache (``ping``,
        ``stats``, failed before keying).  ``evictions_total`` is the result
        cache's lifetime eviction counter — the aggregator diffs successive
        values into the rolling window.  ``trace`` is the request's span
        list (``Span.as_dict()`` rows); it is offered to the tail sampler
        *after* all aggregate folding, so retention never affects a total.
        """
        now = self.clock()
        with self._lock:
            stats = self._op_stats(op)
            stats["count"] += 1
            stats["latency"].observe(latency)
            self._bump("requests", now)
            if error is not None:
                stats["errors"] += 1
                self._bump("errors", now)
            if cached is True:
                self._bump("cache_hits", now)
            elif cached is False:
                self._bump("cache_misses", now)
            if coalesced:
                self._bump("coalesced", now)
            if batch_size > 1:
                self._bump("batched_members", now, batch_size)
            if launches:
                self._bump("launches", now, launches)
            if bytes:
                self._bump("bytes", now, bytes)
            if evictions_total is not None:
                delta = evictions_total - self._last_evictions
                self._last_evictions = evictions_total
                if delta > 0:
                    self._bump("cache_evictions", now, delta)
            # the sampling decision comes last: aggregates above are final
            # before the trace's fate is decided
            retained = self.sampler.admit(latency, errored=error is not None)
            if retained and trace is not None:
                record = json_safe({
                    "kind": "trace",
                    "op": op,
                    "request_id": request_id,
                    "latency_seconds": latency,
                    "error": error,
                    "spans": trace,
                })
                self.sampler.keep(record)
                self._fresh_traces.append(record)
            return retained

    def _bump(self, name: str, now: float, amount: float = 1) -> None:
        self._windows[name].inc(now, amount)
        self._totals[name] += amount

    def drain_traces(self) -> list:
        """Retained-trace records not yet written to the telemetry log."""
        with self._lock:
            out = list(self._fresh_traces)
            self._fresh_traces.clear()
        return out

    # -- snapshotting ------------------------------------------------------
    def snapshot(self, *, cache_stats: dict | None = None) -> dict:
        """The ``repro.serve/stats/v2`` aggregate document.

        ``cache_stats`` is :meth:`repro.serve.result_cache.ResultCache.stats`
        output; when given it is embedded with its derived ``hit_ratio``.
        """
        now = self.clock()
        with self._lock:
            ops = {
                op: {
                    "count": stats["count"],
                    "errors": stats["errors"],
                    "latency": stats["latency"].summary(),
                }
                for op, stats in sorted(self._ops.items())
            }
            window = {"seconds": self.window_seconds}
            window.update(
                {name: self._windows[name].total(now) for name in WINDOW_COUNTERS}
            )
            totals = dict(self._totals)
            lookups = totals["cache_hits"] + totals["cache_misses"]
            totals["hit_ratio"] = (
                totals["cache_hits"] / lookups if lookups else None
            )
            sampler = self.sampler.stats()
            sampler["traces"] = [
                {
                    "op": t["op"],
                    "request_id": t["request_id"],
                    "latency_seconds": t["latency_seconds"],
                    "error": t["error"],
                    "spans": len(t["spans"]),
                }
                for t in self.sampler.retained
            ]
        snap = {
            "schema": STATS_SCHEMA,
            "uptime_seconds": now - self.started,
            "ops": ops,
            "window": window,
            "totals": totals,
            "sampler": sampler,
        }
        if cache_stats is not None:
            cache = dict(cache_stats)
            lookups = cache.get("hits", 0) + cache.get("misses", 0)
            cache["hit_ratio"] = cache.get("hits", 0) / lookups if lookups else None
            snap["cache"] = cache
        return json_safe(snap)
