"""Machine-readable run reports — the schema-versioned JSON of a run.

One :func:`build_run_report` call folds every observability source of a run
into a single dict under the ``repro.obs/run-report/v2`` schema:

* the per-kernel aggregation of a :class:`~repro.device.device.Device`
  (exactly the numbers ``render_trace`` prints),
* the Figure-6 phase breakdown of a
  :class:`~repro.device.profiler.TimingBreakdown`,
* the proposition-engine frontier trajectory of a
  :class:`~repro.core.factor.ParallelFactorResult`,
* the residual history of a
  :class:`~repro.solvers.monitor.ConvergenceHistory`,
* a span summary of a :class:`~repro.obs.tracer.Tracer`, and
* the snapshot of a :class:`~repro.obs.metrics.MetricsRegistry`.

Every section is optional — pass what the run produced.  The report is a
strict superset of the text renderers: ``totals`` mirrors
``summarize``/``TimingBreakdown`` so regression harnesses can diff runs
without parsing tables (see ``benchmarks/conftest.py``, which emits
``BENCH_observability.json`` reports per session).

All imports of other repro layers are deferred into the functions: this
module sits below :mod:`repro.device` in the import graph (the device
imports :mod:`repro.obs.tracer`).
"""

from __future__ import annotations

import json

from .metrics import MetricsRegistry
from .tracer import Tracer, json_safe

__all__ = [
    "RUN_REPORT_SCHEMA",
    "build_run_report",
    "collect_run_metrics",
    "write_run_report",
]

#: Schema tag of the report layout (bump on incompatible changes).  v2:
#: histogram summaries carry reservoir-estimated ``p50``/``p95``/``p99``
#: alongside count/total/min/max/mean, and serve-layer reports add a
#: ``serve`` section (request latency on the daemon clock, per-request
#: launch/byte totals, trace-retention flag).
RUN_REPORT_SCHEMA = "repro.obs/run-report/v2"


def collect_run_metrics(
    registry: MetricsRegistry,
    *,
    device=None,
    timings=None,
    factor_result=None,
    solve_history=None,
) -> MetricsRegistry:
    """Fold the run's telemetry sources into ``registry`` (returned).

    This is the unification the report's ``metrics`` section is built from:
    launch counts and traffic (device), phase seconds (timings), frontier
    occupancy (factor result), solver iterations (history) — all under one
    dotted namespace.

    The fold is *idempotent per source*: a section whose marker counter is
    already populated — by live instrumentation (e.g. :func:`repro.solvers.\
bicgstab` recording into the ambient registry) or by a prior call — is
    left untouched, so totals are never double-counted.
    """
    if device is not None and "kernel.launches" not in registry.counters:
        registry.counter("kernel.launches").inc(device.launch_count)
        registry.counter("kernel.bytes").inc(device.total_bytes())
        for fraction in device.frontier_fractions():
            registry.histogram("kernel.frontier_fraction").observe(fraction)
    if timings is not None:
        # gauges are last-write-wins: re-setting them is already idempotent
        for name, timer in timings.phases.items():
            registry.gauge(f"phase.seconds.{name}").set(timer.seconds)
        registry.gauge("phase.seconds.total").set(timings.total_seconds)
    if factor_result is not None and "factor.iterations" not in registry.counters:
        registry.counter("factor.iterations").inc(factor_result.iterations)
        for size in factor_result.frontier_history:
            registry.histogram("factor.frontier_size").observe(size)
        fraction = factor_result.final_frontier_fraction
        if fraction is not None:
            registry.gauge("factor.final_frontier_fraction").set(fraction)
    if solve_history is not None and "solver.iterations" not in registry.counters:
        registry.counter("solver.iterations").inc(solve_history.n_iterations)
        for residual in solve_history.relative_residuals:
            registry.histogram("solver.relative_residual").observe(residual)
        registry.gauge("solver.final_residual").set(solve_history.final_residual)
    return registry


def build_run_report(
    *,
    command: str | None = None,
    inputs: dict | None = None,
    device=None,
    timings=None,
    factor_result=None,
    solve_history=None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble the schema-versioned RunReport dict (JSON-serializable).

    ``totals`` always matches the text renderers: ``launches``/``bytes``/
    ``kernel_seconds`` equal the :func:`repro.device.trace.summarize` sums,
    ``phase_seconds`` equals ``timings.total_seconds``.
    """
    report: dict = {"schema": RUN_REPORT_SCHEMA}
    if command is not None:
        report["command"] = command
    if inputs:
        report["inputs"] = dict(inputs)
    totals: dict = {}

    if device is not None:
        from ..device.trace import summarize  # deferred: device imports obs

        kernels = []
        for s in summarize(device):
            kernels.append(
                {
                    "name": s.name,
                    "launches": s.launches,
                    "seconds": s.seconds,
                    "bytes": s.bytes_total,
                    "achieved_gbs": s.achieved_gbs,
                    "active_lanes": s.active_lanes,
                    "total_lanes": s.total_lanes,
                    "active_fraction": s.active_fraction,
                }
            )
        report["kernels"] = kernels
        totals["launches"] = device.launch_count
        totals["bytes"] = device.total_bytes()
        totals["kernel_seconds"] = device.total_seconds()

    if timings is not None:
        fractions = timings.fractions()
        report["phases"] = {
            name: {
                "seconds": timer.seconds,
                "calls": timer.calls,
                "fraction": fractions.get(name),
            }
            for name, timer in timings.phases.items()
        }
        totals["phase_seconds"] = timings.total_seconds

    if factor_result is not None:
        report["factor"] = {
            "iterations": factor_result.iterations,
            "m_max": factor_result.m_max,
            "converged": factor_result.converged,
            "frontier_history": list(factor_result.frontier_history),
            "final_frontier_fraction": factor_result.final_frontier_fraction,
            "proposals_per_iteration": list(factor_result.proposals_per_iteration),
        }

    if solve_history is not None:
        report["solver"] = {
            "iterations": solve_history.n_iterations,
            "converged": solve_history.converged,
            "breakdown": solve_history.breakdown,
            "final_residual": solve_history.final_residual,
            "relative_residuals": list(solve_history.relative_residuals),
            "forward_errors": list(solve_history.forward_errors),
        }

    if tracer is not None:
        categories: dict[str, int] = {}
        for s in tracer.spans:
            categories[s.category] = categories.get(s.category, 0) + 1
        report["spans"] = {
            "count": len(tracer.spans),
            "roots": [s.name for s in tracer.roots()],
            "categories": categories,
        }

    if metrics is not None:
        report["metrics"] = metrics.as_dict()

    report["totals"] = totals
    if extra:
        report.update(extra)
    return json_safe(report)


def write_run_report(report: dict, path) -> None:
    """Write a report dict as indented JSON."""
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
