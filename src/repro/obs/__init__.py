"""repro.obs — unified tracing & metrics.

The observability layer every other layer reports into:

* :class:`~repro.obs.tracer.Tracer` — nested spans (run → phase → kernel
  launch → solver), exportable as Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and JSONL; installed ambiently with
  :func:`~repro.obs.tracer.use_tracer`, instrumented sites hook in through
  :func:`~repro.obs.tracer.trace_span` (a no-op when tracing is off).
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  histograms under dotted names, installed with
  :func:`~repro.obs.metrics.use_metrics`.
* :func:`~repro.obs.report.build_run_report` — folds device launch logs,
  phase timings, convergence histories, spans and metrics into one
  schema-versioned RunReport JSON (``repro.obs/run-report/v2``).
* :class:`~repro.obs.agg.Aggregator` — daemon-lifetime aggregation fed per
  request by the serve layer: per-op latency quantiles, rolling windowed
  counters and a tail-based trace sampler, snapshotted under
  ``repro.serve/stats/v2``; exposed by :mod:`repro.obs.expose` as
  Prometheus text and an append-only JSONL telemetry log.

See ``docs/OBSERVABILITY.md`` for the span hierarchy, metric names, the
RunReport schema and the Perfetto how-to.
"""

from .agg import (
    STATS_SCHEMA,
    Aggregator,
    RollingCounter,
    TailSampler,
)
from .expose import (
    TelemetrySchedule,
    render_prometheus,
    write_prometheus,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_metrics,
    use_metrics,
)
from .report import (
    RUN_REPORT_SCHEMA,
    build_run_report,
    collect_run_metrics,
    write_run_report,
)
from .tracer import (
    SCHEMA_VERSION,
    Span,
    Tracer,
    current_tracer,
    monotonic_clock,
    trace_span,
    use_tracer,
)

__all__ = [
    "Aggregator",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RUN_REPORT_SCHEMA",
    "RollingCounter",
    "SCHEMA_VERSION",
    "STATS_SCHEMA",
    "Span",
    "TailSampler",
    "TelemetrySchedule",
    "Tracer",
    "build_run_report",
    "collect_run_metrics",
    "current_metrics",
    "current_tracer",
    "monotonic_clock",
    "render_prometheus",
    "trace_span",
    "use_metrics",
    "use_tracer",
    "write_prometheus",
    "write_run_report",
]
