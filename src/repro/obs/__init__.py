"""repro.obs — unified tracing & metrics.

The observability layer every other layer reports into:

* :class:`~repro.obs.tracer.Tracer` — nested spans (run → phase → kernel
  launch → solver), exportable as Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and JSONL; installed ambiently with
  :func:`~repro.obs.tracer.use_tracer`, instrumented sites hook in through
  :func:`~repro.obs.tracer.trace_span` (a no-op when tracing is off).
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  histograms under dotted names, installed with
  :func:`~repro.obs.metrics.use_metrics`.
* :func:`~repro.obs.report.build_run_report` — folds device launch logs,
  phase timings, convergence histories, spans and metrics into one
  schema-versioned RunReport JSON (``repro.obs/run-report/v1``).

See ``docs/OBSERVABILITY.md`` for the span hierarchy, metric names, the
RunReport schema and the Perfetto how-to.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_metrics,
    use_metrics,
)
from .report import (
    RUN_REPORT_SCHEMA,
    build_run_report,
    collect_run_metrics,
    write_run_report,
)
from .tracer import (
    SCHEMA_VERSION,
    Span,
    Tracer,
    current_tracer,
    trace_span,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RUN_REPORT_SCHEMA",
    "SCHEMA_VERSION",
    "Span",
    "Tracer",
    "build_run_report",
    "collect_run_metrics",
    "current_metrics",
    "current_tracer",
    "trace_span",
    "use_metrics",
    "use_tracer",
    "write_run_report",
]
