"""Counters, gauges and histograms — the metric half of :mod:`repro.obs`.

Where spans (:mod:`repro.obs.tracer`) answer *when and under what* time was
spent, metrics answer *how much in total*: launch counts, bytes of simulated
traffic, frontier occupancy, solver iterations.  A
:class:`MetricsRegistry` holds the three instrument kinds under dotted
names (``kernel.launches``, ``solver.relative_residual``); its
:meth:`~MetricsRegistry.as_dict` snapshot becomes the ``metrics`` section
of the :mod:`~repro.obs.report` RunReport.

All three instruments are **thread-safe**: the serve daemon mutates one
shared registry from every worker thread, so ``inc``/``set``/``observe``
take a per-instrument lock and the registry's get-or-create takes a
registry lock.  (Per-request registries never contend; the locks exist for
the daemon-lifetime one and cost one uncontended acquire elsewhere.)

:class:`Histogram` keeps a streaming summary (count/total/min/max/mean)
*plus* a bounded reservoir of observations (Vitter's algorithm R with a
deterministic per-name seed), which makes p50/p95/p99 quantiles available
from :meth:`Histogram.quantile` and :meth:`Histogram.summary` without
retaining the full series.  While fewer observations than the reservoir
size have arrived, the quantiles are exact.

Like the tracer, a registry can be installed ambiently with
:func:`use_metrics`; instrumented sites ask :func:`current_metrics` and do
nothing when none is installed.
"""

from __future__ import annotations

import math
import random
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_metrics",
    "use_metrics",
]

#: Default bound on the quantile reservoir of a :class:`Histogram`.  Below
#: this many observations the reported quantiles are exact; beyond it they
#: are estimates over a uniform sample.
DEFAULT_RESERVOIR_SIZE = 512

#: The quantiles :meth:`Histogram.summary` reports.
SUMMARY_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


@dataclass
class Counter:
    """Monotone accumulator (launch counts, bytes, iterations)."""

    name: str
    value: float = 0

    def __post_init__(self):
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self.value += amount


@dataclass
class Gauge:
    """Last-write-wins value (a fraction, a final residual)."""

    name: str
    value: float | None = None

    def __post_init__(self):
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


@dataclass
class Histogram:
    """Streaming summary of observations plus a bounded quantile reservoir.

    The full series is never retained — per-launch series belong in span
    attributes; the histogram keeps the streaming aggregate and a uniform
    reservoir sample (Vitter's algorithm R) from which
    :meth:`quantile`/:meth:`summary` estimate p50/p95/p99.  The reservoir's
    RNG is seeded deterministically from the instrument name (or an explicit
    ``reservoir_seed``), so two histograms fed the same sequence report the
    same quantiles — run reports stay reproducible.

    ``observe`` rejects NaN with :class:`ValueError`: a NaN would poison
    ``total``/``mean`` silently and sort unpredictably in the reservoir.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None
    reservoir_size: int = DEFAULT_RESERVOIR_SIZE
    reservoir_seed: int | None = None

    def __post_init__(self):
        if self.reservoir_size < 1:
            raise ValueError(
                f"histogram {self.name!r} needs a positive reservoir size "
                f"(got {self.reservoir_size})"
            )
        self._lock = threading.Lock()
        seed = self.reservoir_seed
        if seed is None:
            seed = zlib.crc32(self.name.encode())  # stable across processes
        self._rng = random.Random(seed)
        self._reservoir: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"histogram {self.name!r} rejects NaN observations")
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            if len(self._reservoir) < self.reservoir_size:
                self._reservoir.append(value)
            else:
                # algorithm R: the k-th observation replaces a reservoir
                # slot with probability reservoir_size / k
                j = self._rng.randrange(self.count)
                if j < self.reservoir_size:
                    self._reservoir[j] = value

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def samples(self) -> list[float]:
        """The current reservoir contents (a copy, unsorted)."""
        with self._lock:
            return list(self._reservoir)

    def quantile(self, q: float) -> float | None:
        """Nearest-rank quantile over the reservoir; ``None`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            ordered = sorted(self._reservoir)
        if not ordered:
            return None
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict:
        with self._lock:
            ordered = sorted(self._reservoir)
            out = {
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.mean,
            }
        for key, q in SUMMARY_QUANTILES:
            if ordered:
                rank = max(1, math.ceil(q * len(ordered)))
                out[key] = ordered[rank - 1]
            else:
                out[key] = None
        return out


@dataclass
class MetricsRegistry:
    """Get-or-create store for the three instrument kinds (thread-safe)."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def __post_init__(self):
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self.counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self.gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self.histograms.setdefault(name, Histogram(name))

    def as_dict(self) -> dict:
        """Plain-type snapshot (the RunReport ``metrics`` section)."""
        with self._lock:
            counters = sorted(self.counters.items())
            gauges = sorted(self.gauges.items())
            histograms = sorted(self.histograms.items())
        return {
            "counters": {n: c.value for n, c in counters},
            "gauges": {n: g.value for n, g in gauges},
            "histograms": {n: h.summary() for n, h in histograms},
        }


# -- the ambient registry --------------------------------------------------
_ACTIVE: list[MetricsRegistry] = []


def current_metrics() -> MetricsRegistry | None:
    """The innermost registry installed with :func:`use_metrics`, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the ambient registry for the ``with`` body."""
    _ACTIVE.append(registry)
    try:
        yield registry
    finally:
        _ACTIVE.pop()
