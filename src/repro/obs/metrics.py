"""Counters, gauges and histograms — the metric half of :mod:`repro.obs`.

Where spans (:mod:`repro.obs.tracer`) answer *when and under what* time was
spent, metrics answer *how much in total*: launch counts, bytes of simulated
traffic, frontier occupancy, solver iterations.  A
:class:`MetricsRegistry` holds the three instrument kinds under dotted
names (``kernel.launches``, ``solver.relative_residual``); its
:meth:`~MetricsRegistry.as_dict` snapshot becomes the ``metrics`` section
of the :mod:`~repro.obs.report` RunReport.

Like the tracer, a registry can be installed ambiently with
:func:`use_metrics`; instrumented sites ask :func:`current_metrics` and do
nothing when none is installed.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_metrics",
    "use_metrics",
]


@dataclass
class Counter:
    """Monotone accumulator (launch counts, bytes, iterations)."""

    name: str
    value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins value (a fraction, a final residual)."""

    name: str
    value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Streaming summary of observations (count/min/max/mean/total).

    Individual observations are not retained — per-launch series belong in
    span attributes; the histogram is the aggregate view.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


@dataclass
class MetricsRegistry:
    """Get-or-create store for the three instrument kinds."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        return self.counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self.gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        return self.histograms.setdefault(name, Histogram(name))

    def as_dict(self) -> dict:
        """Plain-type snapshot (the RunReport ``metrics`` section)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.summary() for n, h in sorted(self.histograms.items())},
        }


# -- the ambient registry --------------------------------------------------
_ACTIVE: list[MetricsRegistry] = []


def current_metrics() -> MetricsRegistry | None:
    """The innermost registry installed with :func:`use_metrics`, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the ambient registry for the ``with`` body."""
    _ACTIVE.append(registry)
    try:
        yield registry
    finally:
        _ACTIVE.pop()
