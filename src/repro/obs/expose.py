"""Exposition of the aggregate telemetry: Prometheus text + JSONL snapshots.

Two consumers of :meth:`repro.obs.agg.Aggregator.snapshot`:

* :func:`render_prometheus` serializes one snapshot into the Prometheus
  text exposition format (version 0.0.4): ``# HELP``/``# TYPE`` headers,
  ``repro_``-prefixed metric names, per-op labels, and latency quantiles
  as a proper ``summary`` (``{quantile="0.5"}`` samples plus ``_sum`` /
  ``_count``).  :func:`write_prometheus` rewrites a file atomically (temp
  file + ``os.replace``, the repo-wide persistence discipline) so a
  scraping agent never reads a torn exposition.
* :class:`TelemetrySchedule` drives both periodic outputs for the daemon:
  on every :meth:`~TelemetrySchedule.tick` (the server calls it after each
  request) it drains freshly retained traces into the JSONL telemetry log,
  and — whenever the configured interval has elapsed on the injectable
  clock — appends a full snapshot line and rewrites the Prometheus file.
  The log is append-only JSONL with a ``kind`` discriminator per line
  (``snapshot`` or ``trace``), so a daemon's whole life is replayable by
  ``repro obs report`` (see ``docs/OBSERVABILITY.md``).

Like :mod:`repro.obs.agg`, scheduling is clock-injectable and this module
never touches the raw stdlib timers directly (raw-timer lint); it defaults
to the tracer's :data:`~repro.obs.tracer.monotonic_clock`.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
from pathlib import Path

from .tracer import monotonic_clock

__all__ = [
    "TelemetrySchedule",
    "prometheus_lines",
    "render_prometheus",
    "write_prometheus",
]

#: Prefix of every exposed metric name.
PROM_PREFIX = "repro"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _name(*parts: str) -> str:
    name = "_".join((PROM_PREFIX, *parts)).replace(".", "_").replace("-", "_")
    if not _NAME_OK.match(name):  # pragma: no cover - all callers are literal
        raise ValueError(f"invalid prometheus metric name {name!r}")
    return name


def _escape_label(value) -> str:
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels(**labels) -> str:
    if not labels:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, _escape_label(v)) for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _value(v) -> str:
    if v is None:
        return "NaN"
    if isinstance(v, bool):
        return "1" if v else "0"
    return repr(float(v))


class _Writer:
    """Accumulates exposition lines, one ``# TYPE`` block per metric."""

    def __init__(self):
        self.lines: list[str] = []

    def header(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, value, **labels) -> None:
        self.lines.append(f"{name}{_labels(**labels)} {_value(value)}")


def prometheus_lines(snapshot: dict) -> list[str]:
    """Exposition lines for one ``repro.serve/stats/v2`` snapshot dict."""
    w = _Writer()

    n = _name("uptime_seconds")
    w.header(n, "gauge", "Seconds since the daemon's aggregator started.")
    w.sample(n, snapshot.get("uptime_seconds", 0.0))

    ops = snapshot.get("ops", {})
    n = _name("requests_total")
    w.header(n, "counter", "Requests handled, by op.")
    for op, stats in ops.items():
        w.sample(n, stats.get("count", 0), op=op)
    n = _name("request_errors_total")
    w.header(n, "counter", "Requests that failed, by op.")
    for op, stats in ops.items():
        w.sample(n, stats.get("errors", 0), op=op)

    n = _name("request_latency_seconds")
    w.header(
        n, "summary", "Request latency by op (reservoir-estimated quantiles)."
    )
    for op, stats in ops.items():
        latency = stats.get("latency", {})
        for key, q in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            w.sample(n, latency.get(key), op=op, quantile=q)
        w.sample(n + "_sum", latency.get("total", 0.0), op=op)
        w.sample(n + "_count", latency.get("count", 0), op=op)

    # lifetime totals; requests/errors are omitted here because the per-op
    # counters above already expose them (sum() over the op label)
    totals = snapshot.get("totals", {})
    for key, kind, help_text in (
        ("cache_hits", "counter", "Total result-cache hits (incl. coalesced)."),
        ("cache_misses", "counter", "Total result-cache misses."),
        ("cache_evictions", "counter", "Total result-cache evictions."),
        ("coalesced", "counter", "Requests served as coalesced followers."),
        ("batched_members", "counter", "Cold misses that shared a batched run."),
        ("launches", "counter", "Simulated kernel launches."),
        ("bytes", "counter", "Simulated global-memory traffic in bytes."),
    ):
        n = _name(key, "total")
        w.header(n, kind, help_text)
        w.sample(n, totals.get(key, 0))
    n = _name("cache_hit_ratio")
    w.header(n, "gauge", "Lifetime cache hit ratio (hits / lookups).")
    w.sample(n, totals.get("hit_ratio"))

    window = snapshot.get("window", {})
    window_seconds = window.get("seconds", 0.0)
    n = _name("window_seconds")
    w.header(n, "gauge", "Width of the rolling window in seconds.")
    w.sample(n, window_seconds)
    n = _name("window")
    w.header(n, "gauge", "Rolling-window totals, by counter name.")
    for key, value in window.items():
        if key != "seconds":
            w.sample(n, value, counter=key)

    cache = snapshot.get("cache")
    if cache:
        for key, kind, help_text in (
            ("entries", "gauge", "Result-cache entries."),
            ("bytes", "gauge", "Result-cache resident bytes."),
            ("hits", "counter", "Result-cache store hits."),
            ("misses", "counter", "Result-cache store misses."),
            ("evictions", "counter", "Result-cache store evictions."),
        ):
            n = _name("result_cache", key)
            w.header(n, kind, help_text)
            w.sample(n, cache.get(key, 0))

    sampler = snapshot.get("sampler")
    if sampler:
        n = _name("traces_retained_total")
        w.header(n, "counter", "Traces retained by the tail sampler, by reason.")
        w.sample(n, sampler.get("retained_errored", 0), reason="error")
        w.sample(n, sampler.get("retained_slow", 0), reason="slow")
        n = _name("traces_dropped_total")
        w.header(n, "counter", "Successful-request traces folded and dropped.")
        w.sample(n, sampler.get("dropped", 0))

    return w.lines


def render_prometheus(snapshot: dict) -> str:
    """One-shot Prometheus text exposition of a snapshot (ends in newline)."""
    return "\n".join(prometheus_lines(snapshot)) + "\n"


def write_prometheus(snapshot: dict, path) -> None:
    """Atomically (re)write the Prometheus exposition file at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(render_prometheus(snapshot))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class TelemetrySchedule:
    """Interval-driven exposition: Prometheus rewrite + JSONL snapshot append.

    ``snapshot_fn`` produces the current stats-v2 document (the server
    passes its ``stats`` method so snapshots include cache stats);
    ``aggregator`` supplies freshly retained traces.  The schedule owns no
    thread: the daemon calls :meth:`tick` after each request and
    :meth:`close` on shutdown, and the injectable ``clock`` decides when a
    tick is due — deterministic under a fake clock, and a no-op object when
    neither output path is configured.
    """

    def __init__(
        self,
        snapshot_fn,
        aggregator,
        *,
        prom_path=None,
        telemetry_path=None,
        interval: float = 10.0,
        clock=None,
    ):
        if interval <= 0:
            raise ValueError(f"telemetry interval must be positive, got {interval}")
        self.snapshot_fn = snapshot_fn
        self.aggregator = aggregator
        self.prom_path = Path(prom_path) if prom_path is not None else None
        self.telemetry_path = (
            Path(telemetry_path) if telemetry_path is not None else None
        )
        self.interval = float(interval)
        self.clock = clock if clock is not None else monotonic_clock
        self.snapshots_written = 0
        self._last: float | None = None
        self._lock = threading.Lock()
        self._closed = False

    @property
    def enabled(self) -> bool:
        return self.prom_path is not None or self.telemetry_path is not None

    def _append_jsonl(self, records: list) -> None:
        self.telemetry_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.telemetry_path, "a", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")

    def tick(self, *, force: bool = False) -> bool:
        """Emit if due (or forced); returns whether a snapshot was emitted.

        Always drains retained traces into the telemetry log first, so a
        trace is on disk by the request after its retention at the latest.
        """
        if not self.enabled:
            return False
        with self._lock:
            if self._closed:
                return False
            if self.telemetry_path is not None:
                traces = self.aggregator.drain_traces()
                if traces:
                    self._append_jsonl(traces)
            now = self.clock()
            due = force or self._last is None or now - self._last >= self.interval
            if not due:
                return False
            self._last = now
            snapshot = self.snapshot_fn()
            if self.telemetry_path is not None:
                self._append_jsonl([{"kind": "snapshot", "at": now, **snapshot}])
            if self.prom_path is not None:
                write_prometheus(snapshot, self.prom_path)
            self.snapshots_written += 1
            return True

    def close(self) -> None:
        """Final forced emission (idempotent) — the daemon's last word."""
        if not self.enabled:
            return
        self.tick(force=True)
        with self._lock:
            self._closed = True
