"""Internal argument-validation helpers.

These are deliberately tiny: they normalise user input to canonical NumPy
arrays once, at API boundaries, so that the vectorized kernels never have to
re-check anything in their hot loops.
"""

from __future__ import annotations

import numpy as np

from .errors import ShapeError

__all__ = [
    "as_index_array",
    "as_value_array",
    "check_square",
    "require",
]

INDEX_DTYPE = np.int64
VALUE_DTYPE = np.float64


def require(condition: bool, message: str, exc: type[Exception] = ShapeError) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def as_index_array(a, *, name: str = "array") -> np.ndarray:
    """Return ``a`` as a contiguous int64 1-D array."""
    out = np.ascontiguousarray(a, dtype=INDEX_DTYPE)
    require(out.ndim == 1, f"{name} must be one-dimensional, got ndim={out.ndim}")
    return out


def as_value_array(a, *, name: str = "array", dtype=None) -> np.ndarray:
    """Return ``a`` as a contiguous floating 1-D array.

    With ``dtype=None`` (default) float32 input stays float32 — the paper
    benchmarks in single precision — and everything else is coerced to
    float64.
    """
    if dtype is None:
        src = np.asarray(a)
        dtype = np.float32 if src.dtype == np.float32 else VALUE_DTYPE
    out = np.ascontiguousarray(a, dtype=dtype)
    require(out.ndim == 1, f"{name} must be one-dimensional, got ndim={out.ndim}")
    return out


def check_square(shape: tuple[int, int], *, name: str = "matrix") -> int:
    """Validate that ``shape`` is square and return its order."""
    require(len(shape) == 2, f"{name} must be two-dimensional, got shape={shape}")
    n_rows, n_cols = shape
    require(n_rows == n_cols, f"{name} must be square, got shape={shape}")
    return int(n_rows)
