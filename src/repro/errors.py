"""Exception types for the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeError(ReproError):
    """An array or matrix has an incompatible shape."""


class FormatError(ReproError):
    """A sparse matrix is malformed (bad indptr, unsorted indices, ...)."""


class ConfigError(ReproError):
    """An algorithm knob received an unknown or malformed value."""


class FactorError(ReproError):
    """A [0,n]-factor violates its invariants."""


class ScanError(ReproError):
    """The bidirectional scan was invoked on invalid input."""


class SolverError(ReproError):
    """An iterative or direct solver failed (breakdown, singular pivot, ...)."""


class ConvergenceError(SolverError):
    """An iterative solver did not reach the requested tolerance."""
