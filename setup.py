"""Legacy setup shim.

The offline environment used for development lacks the ``wheel`` package, so
PEP 660 editable installs fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` falls back to ``setup.py develop`` through this shim.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
